#include "math/roots.h"

#include <algorithm>
#include <cmath>

#include "obs/solver_telemetry.h"

namespace fpsq::math {

namespace {
bool opposite_signs(double fa, double fb) {
  return (fa <= 0.0 && fb >= 0.0) || (fa >= 0.0 && fb <= 0.0);
}

/// Runs a solver body, attributing iterations / failures / bracket
/// errors to the active obs::ScopedSolverContext call site.
template <typename Fn>
RootResult instrumented(const char* algorithm, Fn&& body) {
  try {
    const RootResult r = body();
    obs::record_solver_call(algorithm, r.iterations, r.converged);
    obs::record_solver_residual(algorithm, std::abs(r.value));
    return r;
  } catch (const BracketError&) {
    obs::record_bracket_error(algorithm);
    throw;
  }
}

RootResult bisect_impl(const std::function<double(double)>& f, double a,
                       double b, double x_tol, int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (!opposite_signs(fa, fb)) {
    throw BracketError("bisect: bracket does not change sign");
  }
  RootResult r;
  if (fa == 0.0) {
    r = {a, 0.0, 0, true};
    return r;
  }
  if (fb == 0.0) {
    r = {b, 0.0, 0, true};
    return r;
  }
  for (int i = 0; i < max_iter; ++i) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    r.iterations = i + 1;
    if (fm == 0.0 || 0.5 * (b - a) < x_tol) {
      r.root = m;
      r.value = fm;
      r.converged = true;
      return r;
    }
    if (opposite_signs(fa, fm)) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  r.root = 0.5 * (a + b);
  r.value = f(r.root);
  r.converged = std::abs(b - a) < 2 * x_tol;
  return r;
}

RootResult brent_impl(const std::function<double(double)>& f, double a,
                      double b, double x_tol, int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (!opposite_signs(fa, fb)) {
    throw BracketError("brent: bracket does not change sign");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;  // previous-previous step, for the bisection guard
  bool mflag = true;
  RootResult r;
  for (int i = 0; i < max_iter; ++i) {
    r.iterations = i + 1;
    if (fb == 0.0 || std::abs(b - a) < x_tol) {
      r.root = b;
      r.value = fb;
      r.converged = true;
      return r;
    }
    double s;
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // secant
      s = b - fb * (b - a) / (fb - fa);
    }
    const double lo = std::min(b, 0.25 * (3.0 * a + b));
    const double hi = std::max(b, 0.25 * (3.0 * a + b));
    const bool cond1 = s < lo || s > hi;
    const bool cond2 = mflag && std::abs(s - b) >= 0.5 * std::abs(b - c);
    const bool cond3 = !mflag && std::abs(s - b) >= 0.5 * std::abs(c - d);
    const bool cond4 = mflag && std::abs(b - c) < x_tol;
    const bool cond5 = !mflag && std::abs(c - d) < x_tol;
    if (cond1 || cond2 || cond3 || cond4 || cond5) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (opposite_signs(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  r.root = b;
  r.value = fb;
  r.converged = false;
  return r;
}

RootResult newton_safe_impl(const std::function<double(double)>& f,
                            const std::function<double(double)>& df,
                            double a, double fa, double b, double fb,
                            double x0, double x_tol, int max_iter) {
  if (!opposite_signs(fa, fb)) {
    throw BracketError("newton_safe: bracket does not change sign");
  }
  double x = std::clamp(x0, a, b);
  RootResult r;
  for (int i = 0; i < max_iter; ++i) {
    r.iterations = i + 1;
    const double fx = f(x);
    if (fx == 0.0) {
      r = {x, 0.0, i + 1, true};
      return r;
    }
    // Shrink the bracket around the sign change.
    if (opposite_signs(fa, fx)) {
      b = x;
      fb = fx;
    } else {
      a = x;
      fa = fx;
    }
    const double dfx = df(x);
    double x_next;
    if (dfx != 0.0) {
      x_next = x - fx / dfx;
      if (x_next <= a || x_next >= b) {
        x_next = 0.5 * (a + b);  // Newton escaped the bracket: bisect
      }
    } else {
      x_next = 0.5 * (a + b);
    }
    if (std::abs(x_next - x) < x_tol) {
      r.root = x_next;
      r.value = f(x_next);
      r.converged = true;
      return r;
    }
    x = x_next;
  }
  r.root = x;
  r.value = f(x);
  r.converged = false;
  return r;
}

}  // namespace

RootResult bisect(const std::function<double(double)>& f, double a, double b,
                  double x_tol, int max_iter) {
  return instrumented("bisect",
                      [&] { return bisect_impl(f, a, b, x_tol, max_iter); });
}

RootResult brent(const std::function<double(double)>& f, double a, double b,
                 double x_tol, int max_iter) {
  return instrumented("brent",
                      [&] { return brent_impl(f, a, b, x_tol, max_iter); });
}

RootResult find_root_expanding(const std::function<double(double)>& f,
                               double a, double initial_step, double x_tol,
                               int max_expand, double growth) {
  if (initial_step <= 0.0 || growth <= 1.0) {
    throw std::invalid_argument(
        "find_root_expanding: step must be > 0, growth > 1");
  }
  return instrumented("find_root_expanding", [&] {
    const double fa = f(a);
    double step = initial_step;
    double lo = a;
    double flo = fa;
    for (int i = 0; i < max_expand; ++i) {
      const double hi = lo + step;
      const double fhi = f(hi);
      if (opposite_signs(flo, fhi)) {
        RootResult r = brent_impl(f, lo, hi, x_tol, 200);
        r.iterations += i + 1;  // include the bracket-expansion probes
        return r;
      }
      lo = hi;
      flo = fhi;
      step *= growth;
    }
    throw BracketError("find_root_expanding: no sign change found");
  });
}

RootResult newton_safe(const std::function<double(double)>& f,
                       const std::function<double(double)>& df, double a,
                       double b, double x0, double x_tol, int max_iter) {
  return instrumented("newton_safe", [&] {
    return newton_safe_impl(f, df, a, f(a), b, f(b), x0, x_tol, max_iter);
  });
}

RootResult newton_safe(const std::function<double(double)>& f,
                       const std::function<double(double)>& df, double a,
                       double fa, double b, double fb, double x0,
                       double x_tol, int max_iter) {
  return instrumented("newton_safe", [&] {
    return newton_safe_impl(f, df, a, fa, b, fb, x0, x_tol, max_iter);
  });
}

}  // namespace fpsq::math
