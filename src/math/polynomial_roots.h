// Complex polynomial utilities and simultaneous root finding
// (Durand-Kerner / Weierstrass iteration). Used to localize the full pole
// set of rational waiting-time transforms (e.g. M/G/1 with Erlang-mixture
// service); callers then polish each root against a numerically stable
// factored form of the defining equation.
#pragma once

#include <complex>
#include <vector>

namespace fpsq::math {

/// Polynomial with coefficients c[0] + c[1] z + ... + c[n] z^n.
using Poly = std::vector<std::complex<double>>;

/// Product of two polynomials.
[[nodiscard]] Poly poly_mul(const Poly& a, const Poly& b);

/// Sum (coefficient-wise, zero-padded).
[[nodiscard]] Poly poly_add(const Poly& a, const Poly& b);

/// a scaled by a constant.
[[nodiscard]] Poly poly_scale(const Poly& a, std::complex<double> k);

/// Evaluation by Horner.
[[nodiscard]] std::complex<double> poly_eval(const Poly& p,
                                             std::complex<double> z);

/// Derivative.
[[nodiscard]] Poly poly_derivative(const Poly& p);

/// Drops (numerically) zero leading coefficients.
[[nodiscard]] Poly poly_trim(Poly p, double tol = 0.0);

/// All complex roots by Durand-Kerner iteration.
///
/// @param p        polynomial of degree >= 1 (leading coefficient != 0)
/// @param tol      per-root movement tolerance
/// @param max_iter iteration cap
/// @throws std::invalid_argument for degree < 1
/// @returns degree roots (convergence is checked; a std::runtime_error is
///          thrown if the iteration stalls above 1e-8 movement)
[[nodiscard]] std::vector<std::complex<double>> durand_kerner(
    const Poly& p, double tol = 1e-13, int max_iter = 2000);

}  // namespace fpsq::math
