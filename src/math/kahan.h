// Compensated (Neumaier) summation for long tail sums in the queueing
// inversion code, where terms of alternating sign and widely varying
// magnitude would otherwise lose precision.
#pragma once

namespace fpsq::math {

/// Neumaier variant of Kahan summation: also compensates when the running
/// sum is smaller than the incoming term.
class KahanSum {
 public:
  constexpr KahanSum() = default;

  constexpr void add(double x) noexcept {
    const double t = sum_ + x;
    if ((sum_ >= 0 ? sum_ : -sum_) >= (x >= 0 ? x : -x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  [[nodiscard]] constexpr double value() const noexcept {
    return sum_ + comp_;
  }

  constexpr void reset() noexcept {
    sum_ = 0.0;
    comp_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace fpsq::math
