// Small dense complex linear algebra: Gaussian elimination with partial
// pivoting and a transposed-Vandermonde solver. Sizes here are the Erlang
// order K (a few tens), so O(n^3) dense solves are entirely adequate.
#pragma once

#include <complex>
#include <vector>

namespace fpsq::math {

using Complex = std::complex<double>;
using CVector = std::vector<Complex>;
using CMatrix = std::vector<std::vector<Complex>>;  // row-major

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// @throws std::invalid_argument on shape mismatch,
///         std::runtime_error on (numerically) singular A.
[[nodiscard]] CVector solve_dense(CMatrix a, CVector b);

/// Solves the transposed Vandermonde system
///     sum_j u_j * y_j^(k-1) = b_k,   k = 1..n,
/// by building the dense matrix and calling solve_dense. Used as an
/// independent cross-check of the closed-form D/E_K/1 weights (eq. 27).
[[nodiscard]] CVector solve_vandermonde_transposed(const CVector& y,
                                                   const CVector& b);

/// Evaluates a polynomial with coefficients c[0] + c[1] x + ... by Horner.
[[nodiscard]] Complex polyval(const CVector& coeffs, Complex x);

/// Cheap upper-bound estimate of the condition number of the Vandermonde
/// matrix built on the nodes y (Gautschi-style bound):
///     max_j prod_{m != j} (1 + |y_m|) / |y_j - y_m|.
/// Returns +inf when two nodes coincide; 1.0 for fewer than two nodes.
/// Used by the pole-search diagnostics to flag near-degenerate pole sets.
[[nodiscard]] double vandermonde_condition_estimate(const CVector& y);

}  // namespace fpsq::math
