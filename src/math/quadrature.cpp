#include "math/quadrature.h"

#include <cmath>
#include <stdexcept>

namespace fpsq::math {

namespace {

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

/// Depth at which the error estimate becomes trustworthy: levels above
/// this are always subdivided (2^5 = 32 initial panels).
constexpr int kMaxTrustedDepth = 35;

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth, double min_width) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  // A narrow feature can hide between the five initial samples: force the
  // first few subdivision levels before trusting the error estimate.
  const bool forced = depth > kMaxTrustedDepth;
  // Stop on: tolerance met, recursion exhausted, interval at resolution
  // floor, or delta at the rounding-noise scale of the partial sums
  // (subdividing further can only churn).
  const double noise =
      1e-14 * (std::abs(left) + std::abs(right)) + 1e-300;
  if (!forced && (depth <= 0 || std::abs(delta) <= 15.0 * tol ||
                  (b - a) < min_width || std::abs(delta) <= noise)) {
    return left + right + delta / 15.0;  // Richardson correction
  }
  return adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1,
                  min_width) +
         adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1,
                  min_width);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  if (!(a <= b)) {
    throw std::invalid_argument("integrate: requires a <= b");
  }
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = simpson(fa, fm, fb, b - a);
  const double min_width = (b - a) * 1e-12;
  return adaptive(f, a, b, fa, fm, fb, whole, tol, max_depth, min_width);
}

}  // namespace fpsq::math
