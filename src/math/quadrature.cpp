#include "math/quadrature.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace fpsq::math {

namespace {

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

/// Depth at which the error estimate becomes trustworthy: levels above
/// this are always subdivided (2^5 = 32 initial panels).
constexpr int kMaxTrustedDepth = 35;

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth, double min_width) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  // A narrow feature can hide between the five initial samples: force the
  // first few subdivision levels before trusting the error estimate.
  const bool forced = depth > kMaxTrustedDepth;
  // Stop on: tolerance met, recursion exhausted, interval at resolution
  // floor, or delta at the rounding-noise scale of the partial sums
  // (subdividing further can only churn).
  const double noise =
      1e-14 * (std::abs(left) + std::abs(right)) + 1e-300;
  if (!forced && (depth <= 0 || std::abs(delta) <= 15.0 * tol ||
                  (b - a) < min_width || std::abs(delta) <= noise)) {
    return left + right + delta / 15.0;  // Richardson correction
  }
  return adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1,
                  min_width) +
         adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1,
                  min_width);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  if (!(a <= b)) {
    throw std::invalid_argument("integrate: requires a <= b");
  }
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = simpson(fa, fm, fb, b - a);
  const double min_width = (b - a) * 1e-12;
  return adaptive(f, a, b, fa, fm, fb, whole, tol, max_depth, min_width);
}

namespace {

GaussLegendreRule make_gauss_legendre(int n) {
  GaussLegendreRule rule;
  rule.nodes.resize(static_cast<std::size_t>(n));
  rule.weights.resize(static_cast<std::size_t>(n));
  // Roots of P_n by Newton from the Chebyshev-like initial guess; each
  // root and its mirror fill the rule symmetrically.
  const int half = (n + 1) / 2;
  for (int i = 0; i < half; ++i) {
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0.0;
    for (int it = 0; it < 100; ++it) {
      // Legendre recurrence: (j+1) P_{j+1} = (2j+1) x P_j - j P_{j-1}.
      double p0 = 1.0;
      double p1 = x;
      for (int j = 1; j < n; ++j) {
        const double p2 = ((2.0 * j + 1.0) * x * p1 - j * p0) / (j + 1.0);
        p0 = p1;
        p1 = p2;
      }
      dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.nodes[static_cast<std::size_t>(i)] = -x;
    rule.weights[static_cast<std::size_t>(i)] = w;
    rule.nodes[static_cast<std::size_t>(n - 1 - i)] = x;
    rule.weights[static_cast<std::size_t>(n - 1 - i)] = w;
  }
  return rule;
}

}  // namespace

const GaussLegendreRule& gauss_legendre(int n) {
  if (n < 1 || n > 256) {
    throw std::invalid_argument("gauss_legendre: n in [1, 256]");
  }
  static std::mutex mu;
  // unique_ptr values keep node/weight storage stable across rehashes,
  // so returned references survive concurrent insertions.
  static std::map<int, std::unique_ptr<GaussLegendreRule>>* cache =
      new std::map<int, std::unique_ptr<GaussLegendreRule>>();
  const std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, std::make_unique<GaussLegendreRule>(
                               make_gauss_legendre(n)))
             .first;
  }
  return *it->second;
}

}  // namespace fpsq::math
