// Adaptive Simpson quadrature. Used for validating closed-form MGFs
// (e.g. the packet-position integral of eq. 30) against direct numerical
// integration, and for distribution sanity checks in tests.
#pragma once

#include <functional>

namespace fpsq::math {

/// Integrates f over [a, b] with adaptive Simpson to absolute tolerance
/// `tol`. `max_depth` bounds the recursion (interval halvings).
[[nodiscard]] double integrate(const std::function<double(double)>& f,
                               double a, double b, double tol = 1e-10,
                               int max_depth = 40);

}  // namespace fpsq::math
