// Adaptive Simpson quadrature. Used for validating closed-form MGFs
// (e.g. the packet-position integral of eq. 30) against direct numerical
// integration, and for distribution sanity checks in tests. Plus cached
// fixed-node Gauss-Legendre rules for the hot convolution panels in
// queueing::TailKernel, where the adaptive error estimate would cost more
// than the integral.
#pragma once

#include <functional>
#include <vector>

namespace fpsq::math {

/// Integrates f over [a, b] with adaptive Simpson to absolute tolerance
/// `tol`. `max_depth` bounds the recursion (interval halvings).
[[nodiscard]] double integrate(const std::function<double(double)>& f,
                               double a, double b, double tol = 1e-10,
                               int max_depth = 40);

/// An n-point Gauss-Legendre rule on the reference interval [-1, 1]:
/// sum_i weights[i] * f(nodes[i]) integrates polynomials up to degree
/// 2n - 1 exactly. Nodes are ascending.
struct GaussLegendreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Returns the cached n-point Gauss-Legendre rule (computed once per n by
/// Newton iteration on P_n; thread-safe; the returned reference is valid
/// for the process lifetime).
[[nodiscard]] const GaussLegendreRule& gauss_legendre(int n);

}  // namespace fpsq::math
