#include "math/special.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fpsq::math {

namespace {

// Lanczos coefficients, g = 7, n = 9 (Godfrey).
constexpr double kLanczosG = 7.0;
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

constexpr int kMaxSeriesIter = 1000;
constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

// Lower incomplete gamma by series:  P(a,x) = x^a e^-x / Γ(a) Σ x^n / (a)_n+1
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxSeriesIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEps) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Upper incomplete gamma by modified Lentz continued fraction.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxSeriesIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double x) {
  if (!(x > 0.0)) {
    throw std::domain_error("log_gamma: requires x > 0");
  }
  if (x < 0.5) {
    // Reflection: Γ(x) Γ(1−x) = π / sin(πx)
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double a = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    a += kLanczos[i] / (z + static_cast<double>(i));
  }
  const double t = z + kLanczosG + 0.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(a);
}

double gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::domain_error("gamma_p: requires a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    return gamma_p_series(a, x);
  }
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::domain_error("gamma_q: requires a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) {
    return 1.0 - gamma_p_series(a, x);
  }
  return gamma_q_cf(a, x);
}

double erlang_ccdf(int k, double rate, double x) {
  if (k < 1 || !(rate > 0.0)) {
    throw std::domain_error("erlang_ccdf: requires k >= 1, rate > 0");
  }
  if (x <= 0.0) return 1.0;
  return gamma_q(static_cast<double>(k), rate * x);
}

double erlang_cdf(int k, double rate, double x) {
  if (k < 1 || !(rate > 0.0)) {
    throw std::domain_error("erlang_cdf: requires k >= 1, rate > 0");
  }
  if (x <= 0.0) return 0.0;
  return gamma_p(static_cast<double>(k), rate * x);
}

double erlang_pdf(int k, double rate, double x) {
  if (k < 1 || !(rate > 0.0)) {
    throw std::domain_error("erlang_pdf: requires k >= 1, rate > 0");
  }
  if (x < 0.0) return 0.0;
  if (x == 0.0) return k == 1 ? rate : 0.0;
  // rate^k x^(k-1) e^(-rate x) / (k-1)!
  const double lg = static_cast<double>(k) * std::log(rate) +
                    (static_cast<double>(k) - 1.0) * std::log(x) - rate * x -
                    log_gamma(static_cast<double>(k));
  return std::exp(lg);
}

double poisson_ccdf(std::int64_t n, double mu) {
  if (mu < 0.0) {
    throw std::domain_error("poisson_ccdf: requires mu >= 0");
  }
  if (n < 0) return 1.0;
  if (mu == 0.0) return 0.0;
  // P(N > n) = P(N >= n+1) = P(Erlang(n+1) arrival before mu) = P(a, mu)
  return gamma_p(static_cast<double>(n) + 1.0, mu);
}

double poisson_pmf(std::int64_t n, double mu) {
  if (mu < 0.0 || n < 0) return 0.0;
  if (mu == 0.0) return n == 0 ? 1.0 : 0.0;
  return std::exp(static_cast<double>(n) * std::log(mu) - mu -
                  log_gamma(static_cast<double>(n) + 1.0));
}

double log_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) {
    throw std::domain_error("log_binomial: requires 0 <= k <= n");
  }
  return log_gamma(static_cast<double>(n) + 1.0) -
         log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

double binomial_sf(std::int64_t n, double p, std::int64_t k) {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("binomial_sf: requires p in [0, 1]");
  }
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Sum pmf from k to n; terms decay geometrically past the mode, so a
  // forward sum from k is fine when k > mode; otherwise use 1 − cdf.
  const double mode = p * static_cast<double>(n);
  const double q = 1.0 - p;
  auto log_pmf = [&](std::int64_t i) {
    return log_binomial(n, i) + static_cast<double>(i) * std::log(p) +
           static_cast<double>(n - i) * std::log(q);
  };
  if (static_cast<double>(k) > mode) {
    double sum = 0.0;
    const double lp0 = log_pmf(k);
    double term = 1.0;
    double ratio;
    sum = term;
    for (std::int64_t i = k; i < n; ++i) {
      // pmf(i+1)/pmf(i) = (n-i)/(i+1) * p/q
      ratio = static_cast<double>(n - i) / static_cast<double>(i + 1) * p / q;
      term *= ratio;
      sum += term;
      if (term < sum * kEps) break;
    }
    return std::exp(lp0) * sum;
  }
  // Left side: compute the complement by summing the lower tail.
  double sum = 0.0;
  const double lp0 = log_pmf(k - 1);
  double term = 1.0;
  sum = term;
  for (std::int64_t i = k - 1; i > 0; --i) {
    // pmf(i-1)/pmf(i) = i/(n-i+1) * q/p
    const double ratio =
        static_cast<double>(i) / static_cast<double>(n - i + 1) * q / p;
    term *= ratio;
    sum += term;
    if (term < sum * kEps) break;
  }
  return 1.0 - std::exp(lp0) * sum;
}

double log1p(double x) { return std::log1p(x); }

}  // namespace fpsq::math
