// One-dimensional minimization, used for the `inf`/`sup` programs in the
// Chernoff / large-deviations estimates of Section 3.1 (eqs. 8, 10, 12, 36).
#pragma once

#include <functional>

namespace fpsq::math {

/// Result of a 1-D minimization.
struct MinResult {
  double x = 0.0;       ///< argmin
  double value = 0.0;   ///< f(argmin)
  int iterations = 0;
  bool converged = false;
};

/// Golden-section search on a unimodal function over [a, b].
[[nodiscard]] MinResult golden_section(const std::function<double(double)>& f,
                                       double a, double b,
                                       double x_tol = 1e-10,
                                       int max_iter = 200);

/// Minimizes f over (a, inf): scans geometrically-spaced probes from
/// `a + initial_step` until the sampled values start increasing, then
/// refines with golden-section around the best probe. Intended for smooth
/// quasi-convex objectives such as the Chernoff exponent in `t`.
[[nodiscard]] MinResult minimize_scan(const std::function<double(double)>& f,
                                      double a, double initial_step,
                                      double growth = 1.3,
                                      int max_probes = 400,
                                      double x_tol = 1e-10);

/// Maximizes f over (a, inf) via minimize_scan on -f.
[[nodiscard]] MinResult maximize_scan(const std::function<double(double)>& f,
                                      double a, double initial_step,
                                      double growth = 1.3,
                                      int max_probes = 400,
                                      double x_tol = 1e-10);

}  // namespace fpsq::math
