#include "math/minimize.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/solver_telemetry.h"

namespace fpsq::math {

namespace {

MinResult golden_section_impl(const std::function<double(double)>& f,
                              double a, double b, double x_tol,
                              int max_iter) {
  if (!(a < b)) {
    throw std::invalid_argument("golden_section: need a < b");
  }
  constexpr double kInvPhi = 0.6180339887498949;   // 1/phi
  constexpr double kInvPhi2 = 0.3819660112501051;  // 1/phi^2
  double h = b - a;
  double c = a + kInvPhi2 * h;
  double d = a + kInvPhi * h;
  double fc = f(c);
  double fd = f(d);
  MinResult r;
  for (int i = 0; i < max_iter && h > x_tol; ++i) {
    r.iterations = i + 1;
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      h = b - a;
      c = a + kInvPhi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      h = b - a;
      d = a + kInvPhi * h;
      fd = f(d);
    }
  }
  if (fc < fd) {
    r.x = c;
    r.value = fc;
  } else {
    r.x = d;
    r.value = fd;
  }
  r.converged = h <= x_tol;
  return r;
}

}  // namespace

MinResult golden_section(const std::function<double(double)>& f, double a,
                         double b, double x_tol, int max_iter) {
  const MinResult r = golden_section_impl(f, a, b, x_tol, max_iter);
  obs::record_solver_call("golden_section", r.iterations, r.converged);
  return r;
}

MinResult minimize_scan(const std::function<double(double)>& f, double a,
                        double initial_step, double growth, int max_probes,
                        double x_tol) {
  if (initial_step <= 0.0 || growth <= 1.0) {
    throw std::invalid_argument(
        "minimize_scan: step must be > 0 and growth > 1");
  }
  // Probe geometrically; remember the best point and its neighbours.
  double best_x = a + initial_step;
  double best_f = f(best_x);
  double prev_x = a;  // left neighbour of the best probe
  double x = best_x;
  double step = initial_step * growth;
  int since_best = 0;
  MinResult r;
  for (int i = 0; i < max_probes; ++i) {
    const double nx = x + step;
    const double fx = f(nx);
    r.iterations = i + 1;
    if (fx < best_f) {
      prev_x = x;
      best_x = nx;
      best_f = fx;
      since_best = 0;
    } else {
      ++since_best;
      // Two consecutive increases after the minimum: stop probing.
      if (since_best >= 2) {
        break;
      }
    }
    x = nx;
    step *= growth;
  }
  // Refine around the best probe: the minimum lies in [prev_x, x + step].
  const double lo = prev_x;
  const double hi = x + step;
  MinResult g = golden_section_impl(f, lo, hi, x_tol, 200);
  if (g.value <= best_f) {
    g.iterations += r.iterations;
    obs::record_solver_call("minimize_scan", g.iterations, g.converged);
    return g;
  }
  r.x = best_x;
  r.value = best_f;
  r.converged = true;
  obs::record_solver_call("minimize_scan", r.iterations, r.converged);
  return r;
}

MinResult maximize_scan(const std::function<double(double)>& f, double a,
                        double initial_step, double growth, int max_probes,
                        double x_tol) {
  MinResult m = minimize_scan([&f](double t) { return -f(t); }, a,
                              initial_step, growth, max_probes, x_tol);
  m.value = -m.value;
  return m;
}

}  // namespace fpsq::math
