#include "math/linalg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fpsq::math {

CVector solve_dense(CMatrix a, CVector b) {
  const std::size_t n = a.size();
  if (n == 0 || b.size() != n) {
    throw std::invalid_argument("solve_dense: shape mismatch");
  }
  for (const auto& row : a) {
    if (row.size() != n) {
      throw std::invalid_argument("solve_dense: matrix not square");
    }
  }
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a[col][col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a[r][col]);
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0) {
      throw std::runtime_error("solve_dense: singular matrix");
    }
    if (pivot != col) {
      std::swap(a[pivot], a[col]);
      std::swap(b[pivot], b[col]);
    }
    const Complex inv_p = Complex{1.0, 0.0} / a[col][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const Complex factor = a[r][col] * inv_p;
      if (factor == Complex{0.0, 0.0}) continue;
      for (std::size_t c = col; c < n; ++c) {
        a[r][c] -= factor * a[col][c];
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  CVector x(n);
  for (std::size_t i = n; i-- > 0;) {
    Complex acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) {
      acc -= a[i][c] * x[c];
    }
    x[i] = acc / a[i][i];
  }
  return x;
}

CVector solve_vandermonde_transposed(const CVector& y, const CVector& b) {
  const std::size_t n = y.size();
  if (b.size() != n) {
    throw std::invalid_argument("solve_vandermonde_transposed: size mismatch");
  }
  CMatrix a(n, CVector(n));
  for (std::size_t k = 0; k < n; ++k) {    // equation index (power k)
    for (std::size_t j = 0; j < n; ++j) {  // unknown index
      a[k][j] = std::pow(y[j], static_cast<double>(k));
    }
  }
  return solve_dense(std::move(a), b);
}

double vandermonde_condition_estimate(const CVector& y) {
  const std::size_t n = y.size();
  if (n < 2) return 1.0;
  double worst = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    double log_prod = 0.0;  // accumulate in log space to dodge overflow
    bool degenerate = false;
    for (std::size_t m = 0; m < n; ++m) {
      if (m == j) continue;
      const double sep = std::abs(y[j] - y[m]);
      if (sep == 0.0) {
        degenerate = true;
        break;
      }
      log_prod += std::log((1.0 + std::abs(y[m])) / sep);
    }
    if (degenerate) {
      return std::numeric_limits<double>::infinity();
    }
    worst = std::max(worst, std::exp(log_prod));
  }
  return worst;
}

Complex polyval(const CVector& coeffs, Complex x) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

}  // namespace fpsq::math
