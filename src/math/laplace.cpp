#include "math/laplace.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace fpsq::math {

double invert_laplace_euler(const LaplaceFn& f_hat, double t, int m) {
  if (!(t > 0.0)) {
    throw std::invalid_argument("invert_laplace_euler: t must be > 0");
  }
  if (m < 1 || m > 60) {
    throw std::invalid_argument("invert_laplace_euler: m in [1, 60]");
  }
  // Abate & Whitt (1995): f(t) ~ Euler average of the partial sums of the
  // alternating Bromwich series with A = discretization parameter.
  const double a = 18.4;  // ~1e-8 discretization error
  const int n = 15;       // plain terms before Euler averaging

  // Re u fixed at a/(2t); the imaginary part walks the Bromwich line.
  auto series_term = [&](int k) {
    const std::complex<double> u{a / (2.0 * t), M_PI * k / t};
    return (k % 2 == 0 ? 1.0 : -1.0) * f_hat(u).real();
  };

  // s_n = first partial sums.
  double sum = 0.5 * f_hat(std::complex<double>{a / (2.0 * t), 0.0}).real();
  for (int k = 1; k <= n; ++k) {
    sum += series_term(k);
  }
  // Euler-average the next m partial sums with binomial weights.
  std::vector<double> partial(static_cast<std::size_t>(m) + 1);
  partial[0] = sum;
  for (int j = 1; j <= m; ++j) {
    partial[static_cast<std::size_t>(j)] =
        partial[static_cast<std::size_t>(j - 1)] + series_term(n + j);
  }
  double euler = 0.0;
  double binom = 1.0;  // C(m, 0)
  double total_weight = std::pow(2.0, m);
  for (int j = 0; j <= m; ++j) {
    euler += binom * partial[static_cast<std::size_t>(j)];
    binom *= static_cast<double>(m - j) / static_cast<double>(j + 1);
  }
  return std::exp(a / 2.0) / t * euler / total_weight;
}

double tail_from_mgf(
    const std::function<std::complex<double>(std::complex<double>)>& mgf,
    double x, int m) {
  auto t_hat = [&mgf](std::complex<double> u) {
    return (std::complex<double>{1.0, 0.0} - mgf(-u)) / u;
  };
  return invert_laplace_euler(t_hat, x, m);
}

}  // namespace fpsq::math
