// Numerical Laplace-transform inversion (Abate-Whitt Euler algorithm).
// Serves as an *independent* evaluation route for the delay tails: the
// analytic solvers produce moment generating functions F(s) = E e^{sX};
// the tail's Laplace transform is
//     T(u) = \int_0^inf e^{-u x} P(X > x) dx = (1 - F(-u)) / u ,
// which this module inverts numerically. Tests cross-validate the
// explicit partial-fraction/convolution tails against this inversion.
#pragma once

#include <complex>
#include <functional>

namespace fpsq::math {

/// Laplace-space function f_hat(u), u complex with Re u > 0.
using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;

/// Euler-algorithm inversion of f_hat at t > 0.
///
/// @param m  Euler-averaging order (default 20; ~10-12 correct digits for
///           smooth originals)
[[nodiscard]] double invert_laplace_euler(const LaplaceFn& f_hat, double t,
                                          int m = 20);

/// Convenience: tail P(X > x) recovered from an MGF evaluator
/// F(s) = E e^{sX} via T(u) = (1 - F(-u))/u.
[[nodiscard]] double tail_from_mgf(
    const std::function<std::complex<double>(std::complex<double>)>& mgf,
    double x, int m = 20);

}  // namespace fpsq::math
