// fpsq::obs — timeline sampler: a background thread that snapshots the
// global metrics registry at a fixed interval so long sweeps and
// simulations can be profiled over time, then writes the series as one
// JSON document (schema fpsq.timeline.v1).
//
// Wired to `--timeline-out FILE [--timeline-interval-ms N]` on every
// fpsq subcommand. `stop_and_write()` always appends one final sample
// after the workload finished, so the last entry of the series agrees
// with the `--metrics-out` snapshot taken at the same point.
//
// Under -DFPSQ_NO_METRICS the background thread is compiled out:
// start() records the configuration but spawns nothing, and
// stop_and_write() still emits a schema-valid file holding only the
// (empty-registry) final sample.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace fpsq::obs {

class TimelineSampler {
 public:
  struct Options {
    std::string path;
    /// Sampling period. Non-positive values are rejected by start();
    /// positive values below kMinIntervalMs are clamped up to it so a
    /// misconfigured interval can never hot-spin the sampler thread.
    double interval_ms = 100.0;
  };

  /// Smallest accepted sampling period [ms]; see Options::interval_ms.
  static constexpr double kMinIntervalMs = 1.0;

  TimelineSampler() = default;
  /// Stops the sampling thread if still running (without writing).
  ~TimelineSampler();

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  /// Starts sampling MetricsRegistry::global() every
  /// `options.interval_ms`. Returns false (and does nothing) when
  /// already running or the interval is not positive.
  bool start(const Options& options);

  /// Stops the sampler, appends one final sample, and writes the full
  /// series to `options.path`. When the run ends right on an interval
  /// boundary (the last periodic sample is less than half an interval
  /// old), the final sample *replaces* it instead of duplicating it.
  /// Returns false on I/O failure or when start() was never called.
  /// Idempotent: a second call is a no-op returning true.
  bool stop_and_write();

  [[nodiscard]] bool running() const;

  /// Samples collected so far (including the final one after stop).
  [[nodiscard]] std::size_t sample_count() const;

  /// Serializes the collected series (without writing). Exposed for
  /// tests; the schema is identical to the file stop_and_write emits.
  [[nodiscard]] std::string to_json() const;

  /// The process-wide sampler driven by the CLI flags.
  static TimelineSampler& global();

 private:
  struct Sample {
    double t_s = 0.0;  ///< seconds since start()
    MetricsSnapshot snapshot;
  };

  void sampling_loop();
  [[nodiscard]] Sample take_sample_locked() const;
  void append_sample_locked();
  [[nodiscard]] std::string to_json_locked_unsafe() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  Options options_;
  std::vector<Sample> samples_;
  std::chrono::steady_clock::time_point started_at_;
  bool running_ = false;
  bool stop_requested_ = false;
  bool finalized_ = false;
};

}  // namespace fpsq::obs
