#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fpsq::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Sharded storage is organized as fixed arrays of lazily-allocated
// blocks: the block directory never reallocates, so the snapshotting
// thread can walk it while owner threads keep recording.
constexpr std::uint32_t kCounterBlockSize = 256;
constexpr std::uint32_t kCounterBlocks = 64;  // 16384 counters max
constexpr std::uint32_t kHistBlockSize = 32;
constexpr std::uint32_t kHistBlocks = 64;  // 2048 histograms max
constexpr std::uint32_t kGaugeBlockSize = 64;
constexpr std::uint32_t kGaugeBlocks = 64;  // 4096 gauges max

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct HistCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{kInf};
  std::atomic<double> max{-kInf};
  std::atomic<std::uint64_t> buckets[Histogram::kBuckets] = {};
};

struct GaugeCell {
  std::atomic<std::uint64_t> bits{0};  // bit_cast'ed double, last write
  std::atomic<double> peak{-kInf};     // set_max accumulator
  std::atomic<bool> ever_set{false};
};

using CounterBlock = std::array<CounterCell, kCounterBlockSize>;
using HistBlock = std::array<HistCell, kHistBlockSize>;
using GaugeBlock = std::array<GaugeCell, kGaugeBlockSize>;

/// Lazily-allocated block directory; `Block` cells are written by a
/// single owner thread and read (relaxed) by the snapshotter.
template <typename Block, std::uint32_t BlockCount, std::uint32_t BlockSize>
struct BlockDir {
  std::atomic<Block*> blocks[BlockCount] = {};

  ~BlockDir() {
    for (auto& b : blocks) delete b.load(std::memory_order_acquire);
  }

  /// Owner-thread access; allocates the block on first touch.
  typename Block::value_type& cell(std::uint32_t slot) {
    const std::uint32_t bi = slot / BlockSize;
    Block* b = blocks[bi].load(std::memory_order_acquire);
    if (b == nullptr) {
      b = new Block();
      blocks[bi].store(b, std::memory_order_release);
    }
    return (*b)[slot % BlockSize];
  }

  /// Reader access; nullptr when the block was never touched.
  const typename Block::value_type* peek(std::uint32_t slot) const {
    const Block* b = blocks[slot / BlockSize].load(std::memory_order_acquire);
    return b == nullptr ? nullptr : &(*b)[slot % BlockSize];
  }
};

struct Shard {
  BlockDir<CounterBlock, kCounterBlocks, kCounterBlockSize> counters;
  BlockDir<HistBlock, kHistBlocks, kHistBlockSize> hists;
};

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  Kind kind;
  std::uint32_t slot;  ///< per-kind index
};

struct HistAgg {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = kInf;
  double max = -kInf;
  std::uint64_t buckets[Histogram::kBuckets] = {};

  void merge_cell(const HistCell& c) {
    count += c.count.load(std::memory_order_relaxed);
    sum += c.sum.load(std::memory_order_relaxed);
    min = std::min(min, c.min.load(std::memory_order_relaxed));
    max = std::max(max, c.max.load(std::memory_order_relaxed));
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      buckets[i] += c.buckets[i].load(std::memory_order_relaxed);
    }
  }
};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

void json_escape_to(std::string& out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void json_number_to(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

// ---- Histogram bucketing -------------------------------------------------

int Histogram::bucket_index(double v) noexcept {
  // Decade grid: bucket 0 is the underflow (v < 1e-18, incl. <= 0),
  // bucket 37 the overflow (v >= 1e18), bucket i in between covers
  // [10^(i-19), 10^(i-18)).
  if (!(v >= 1e-18)) return 0;  // also catches NaN
  if (v >= 1e18) return kBuckets - 1;
  const int i = 19 + static_cast<int>(std::floor(std::log10(v)));
  return std::clamp(i, 1, kBuckets - 2);
}

double Histogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0.0;
  return std::pow(10.0, i - 19);
}

// ---- registry internals --------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> index;  // name -> metrics[]
  std::vector<MetricInfo> metrics;
  std::uint32_t n_counters = 0;
  std::uint32_t n_gauges = 0;
  std::uint32_t n_hists = 0;

  std::vector<Shard*> shards;  // live thread shards (owned)
  std::vector<std::uint64_t> retired_counters;
  std::vector<HistAgg> retired_hists;
  BlockDir<GaugeBlock, kGaugeBlocks, kGaugeBlockSize> gauges;

  std::uint32_t intern(std::string_view name, Kind kind) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(std::string(name));
    if (it != index.end()) {
      const MetricInfo& info = metrics[it->second];
      if (info.kind != kind) {
        throw std::invalid_argument("MetricsRegistry: metric '" +
                                    std::string(name) +
                                    "' already registered as " +
                                    kind_name(info.kind));
      }
      return info.slot;
    }
    std::uint32_t slot = 0;
    switch (kind) {
      case Kind::kCounter:
        slot = n_counters++;
        if (slot >= kCounterBlocks * kCounterBlockSize) {
          throw std::runtime_error("MetricsRegistry: counter space full");
        }
        retired_counters.resize(n_counters, 0);
        break;
      case Kind::kGauge:
        slot = n_gauges++;
        if (slot >= kGaugeBlocks * kGaugeBlockSize) {
          throw std::runtime_error("MetricsRegistry: gauge space full");
        }
        gauges.cell(slot);  // touch so snapshots see the block
        break;
      case Kind::kHistogram:
        slot = n_hists++;
        if (slot >= kHistBlocks * kHistBlockSize) {
          throw std::runtime_error("MetricsRegistry: histogram space full");
        }
        retired_hists.resize(n_hists);
        break;
    }
    index.emplace(std::string(name), static_cast<std::uint32_t>(
                                         metrics.size()));
    metrics.push_back({std::string(name), kind, slot});
    return slot;
  }

  Shard* adopt_shard() {
    auto* s = new Shard();
    std::lock_guard<std::mutex> lock(mu);
    shards.push_back(s);
    return s;
  }

  void retire_shard(Shard* s) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::uint32_t slot = 0; slot < n_counters; ++slot) {
      if (const CounterCell* c = s->counters.peek(slot)) {
        retired_counters[slot] += c->value.load(std::memory_order_relaxed);
      }
    }
    for (std::uint32_t slot = 0; slot < n_hists; ++slot) {
      if (const HistCell* c = s->hists.peek(slot)) {
        retired_hists[slot].merge_cell(*c);
      }
    }
    shards.erase(std::remove(shards.begin(), shards.end(), s),
                 shards.end());
    delete s;
  }
};

namespace {

/// Per-thread shard handle; flushes into the (leaked) global registry's
/// retired totals when the thread exits.
struct ThreadShard {
  MetricsRegistry::Impl* owner = nullptr;
  Shard* shard = nullptr;
  ~ThreadShard() {
    if (owner != nullptr && shard != nullptr) {
      owner->retire_shard(shard);
    }
  }
};

Shard& shard_for(MetricsRegistry::Impl* impl) {
  thread_local ThreadShard t;
  if (t.shard == nullptr) {
    t.owner = impl;
    t.shard = impl->adopt_shard();
  }
  return *t.shard;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry();  // intentionally leaked
  return *g;
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter{this, impl_->intern(name, Kind::kCounter)};
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge{this, impl_->intern(name, Kind::kGauge)};
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return Histogram{this, impl_->intern(name, Kind::kHistogram)};
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t n) {
  counter(name).add(n);
}

void MetricsRegistry::set_gauge(std::string_view name, double v) {
  gauge(name).set(v);
}

void MetricsRegistry::max_gauge(std::string_view name, double v) {
  gauge(name).set_max(v);
}

void MetricsRegistry::record_histogram(std::string_view name, double v) {
  histogram(name).record(v);
}

void MetricsRegistry::counter_add(std::uint32_t id,
                                  std::uint64_t n) noexcept {
  auto& cell = shard_for(impl_).counters.cell(id);
  cell.value.store(cell.value.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(std::uint32_t id, double v) noexcept {
  auto& cell = impl_->gauges.cell(id);
  cell.bits.store(std::bit_cast<std::uint64_t>(v),
                  std::memory_order_relaxed);
  cell.ever_set.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_max(std::uint32_t id, double v) noexcept {
  auto& cell = impl_->gauges.cell(id);
  double cur = cell.peak.load(std::memory_order_relaxed);
  while (v > cur && !cell.peak.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
  cell.bits.store(
      std::bit_cast<std::uint64_t>(cell.peak.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
  cell.ever_set.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::histogram_record(std::uint32_t id, double v) noexcept {
  auto& cell = shard_for(impl_).hists.cell(id);
  cell.count.store(cell.count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  cell.sum.store(cell.sum.load(std::memory_order_relaxed) + v,
                 std::memory_order_relaxed);
  if (v < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(v, std::memory_order_relaxed);
  }
  if (v > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(v, std::memory_order_relaxed);
  }
  auto& bucket = cell.buckets[Histogram::bucket_index(v)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) const noexcept {
  if (reg_ != nullptr) reg_->counter_add(id_, n);
}

void Gauge::set(double v) const noexcept {
  if (reg_ != nullptr) reg_->gauge_set(id_, v);
}

void Gauge::set_max(double v) const noexcept {
  if (reg_ != nullptr) reg_->gauge_max(id_, v);
}

void Histogram::record(double v) const noexcept {
  if (reg_ != nullptr) reg_->histogram_record(id_, v);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const MetricInfo& m : impl_->metrics) {
    switch (m.kind) {
      case Kind::kCounter: {
        std::uint64_t total = impl_->retired_counters[m.slot];
        for (const Shard* s : impl_->shards) {
          if (const CounterCell* c = s->counters.peek(m.slot)) {
            total += c->value.load(std::memory_order_relaxed);
          }
        }
        out.counters.push_back({m.name, total});
        break;
      }
      case Kind::kGauge: {
        const GaugeCell* c = impl_->gauges.peek(m.slot);
        MetricsSnapshot::GaugeValue g;
        g.name = m.name;
        if (c != nullptr && c->ever_set.load(std::memory_order_relaxed)) {
          g.value = std::bit_cast<double>(
              c->bits.load(std::memory_order_relaxed));
          g.ever_set = true;
        }
        out.gauges.push_back(std::move(g));
        break;
      }
      case Kind::kHistogram: {
        HistAgg agg = impl_->retired_hists[m.slot];
        for (const Shard* s : impl_->shards) {
          if (const HistCell* c = s->hists.peek(m.slot)) {
            agg.merge_cell(*c);
          }
        }
        MetricsSnapshot::HistogramValue h;
        h.name = m.name;
        h.count = agg.count;
        h.sum = agg.sum;
        if (agg.count > 0) {
          h.min = agg.min;
          h.max = agg.max;
        }
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (agg.buckets[i] > 0) {
            h.buckets.emplace_back(Histogram::bucket_lower_bound(i),
                                   agg.buckets[i]);
          }
        }
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::fill(impl_->retired_counters.begin(), impl_->retired_counters.end(),
            std::uint64_t{0});
  for (auto& h : impl_->retired_hists) h = HistAgg{};
  for (Shard* s : impl_->shards) {
    for (std::uint32_t slot = 0; slot < impl_->n_counters; ++slot) {
      if (const CounterCell* c = s->counters.peek(slot)) {
        const_cast<CounterCell*>(c)->value.store(
            0, std::memory_order_relaxed);
      }
    }
    for (std::uint32_t slot = 0; slot < impl_->n_hists; ++slot) {
      if (const HistCell* c = s->hists.peek(slot)) {
        auto* cell = const_cast<HistCell*>(c);
        cell->count.store(0, std::memory_order_relaxed);
        cell->sum.store(0.0, std::memory_order_relaxed);
        cell->min.store(kInf, std::memory_order_relaxed);
        cell->max.store(-kInf, std::memory_order_relaxed);
        for (auto& b : cell->buckets) {
          b.store(0, std::memory_order_relaxed);
        }
      }
    }
  }
  for (std::uint32_t slot = 0; slot < impl_->n_gauges; ++slot) {
    if (const GaugeCell* c = impl_->gauges.peek(slot)) {
      auto* cell = const_cast<GaugeCell*>(c);
      cell->bits.store(0, std::memory_order_relaxed);
      cell->peak.store(-kInf, std::memory_order_relaxed);
      cell->ever_set.store(false, std::memory_order_relaxed);
    }
  }
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->metrics.size();
}

// ---- export --------------------------------------------------------------

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"fpsq.metrics.v1\",\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    json_escape_to(out, counters[i].name);
    out += "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    json_escape_to(out, gauges[i].name);
    out += "\": ";
    json_number_to(out, gauges[i].ever_set ? gauges[i].value : 0.0);
  }
  out += gauges.empty() ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    json_escape_to(out, h.name);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": ";
    json_number_to(out, h.sum);
    out += ", \"min\": ";
    json_number_to(out, h.count > 0 ? h.min : 0.0);
    out += ", \"max\": ";
    json_number_to(out, h.count > 0 ? h.max : 0.0);
    out += ", \"mean\": ";
    json_number_to(out, h.mean());
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "[";
      json_number_to(out, h.buckets[b].first);
      out += ", " + std::to_string(h.buckets[b].second) + "]";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}" : "\n  }";
  out += "\n}";
  return out;
}

bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = snapshot.to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                      body.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

std::string render_summary(const MetricsSnapshot& s) {
  std::ostringstream os;
  os.precision(4);
  os << "| metric | type | count | value/mean | min | max |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const auto& c : s.counters) {
    os << "| " << c.name << " | counter | " << c.value << " | | | |\n";
  }
  for (const auto& g : s.gauges) {
    os << "| " << g.name << " | gauge | | ";
    if (g.ever_set) {
      os << g.value;
    } else {
      os << "-";
    }
    os << " | | |\n";
  }
  for (const auto& h : s.histograms) {
    os << "| " << h.name << " | histogram | " << h.count << " | "
       << h.mean() << " | ";
    if (h.count > 0) {
      os << h.min << " | " << h.max;
    } else {
      os << "- | -";
    }
    os << " |\n";
  }
  if (s.counters.empty() && s.gauges.empty() && s.histograms.empty()) {
    os << "| (no metrics recorded) | | | | | |\n";
  }
  return os.str();
}

void ensure_baseline_schema() {
  auto& reg = MetricsRegistry::global();
  (void)reg.counter("sim.events_executed");
  (void)reg.gauge("sim.events_per_sec");
  (void)reg.gauge("sim.heap_high_water");
  (void)reg.gauge("sim.run_wall_s");
  (void)reg.counter("sim.replications");
  // Parallel runtime (fpsq::par).
  (void)reg.gauge("par.pool.threads");
  (void)reg.counter("par.pool.tasks");
  (void)reg.counter("par.pool.regions");
  (void)reg.gauge("par.pool.queue_high_water");
  (void)reg.gauge("par.pool.busy_s");
  (void)reg.gauge("par.pool.utilization");
  // Solver memoization (queueing::SolverCache).
  (void)reg.counter("queueing.cache.dek1.hits");
  (void)reg.counter("queueing.cache.dek1.misses");
  (void)reg.counter("queueing.cache.giek1.hits");
  (void)reg.counter("queueing.cache.giek1.misses");
  (void)reg.counter("queueing.cache.md1.hits");
  (void)reg.counter("queueing.cache.md1.misses");
  (void)reg.counter("queueing.cache.warm_starts");
  (void)reg.gauge("queueing.cache.entries");
  // Robustness layer (fpsq::err + the degrading sweep drivers).
  (void)reg.counter("err.solver_failures");
  (void)reg.counter("err.injected_faults");
  (void)reg.counter("err.fallback_cells");
  (void)reg.counter("err.failed_cells");
}

}  // namespace fpsq::obs
