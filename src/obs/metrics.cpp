#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/json.h"
#include "obs/manifest.h"

namespace fpsq::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Sharded storage is organized as fixed arrays of lazily-allocated
// blocks: the block directory never reallocates, so the snapshotting
// thread can walk it while owner threads keep recording.
constexpr std::uint32_t kCounterBlockSize = 256;
constexpr std::uint32_t kCounterBlocks = 64;  // 16384 counters max
constexpr std::uint32_t kHistBlockSize = 32;
constexpr std::uint32_t kHistBlocks = 64;  // 2048 histograms max
constexpr std::uint32_t kGaugeBlockSize = 64;
constexpr std::uint32_t kGaugeBlocks = 64;  // 4096 gauges max

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct HistCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{kInf};
  std::atomic<double> max{-kInf};
  std::atomic<std::uint64_t> buckets[Histogram::kBuckets] = {};
};

struct GaugeCell {
  std::atomic<std::uint64_t> bits{0};  // bit_cast'ed double, last write
  std::atomic<double> peak{-kInf};     // set_max accumulator
  std::atomic<bool> ever_set{false};
};

using CounterBlock = std::array<CounterCell, kCounterBlockSize>;
using HistBlock = std::array<HistCell, kHistBlockSize>;
using GaugeBlock = std::array<GaugeCell, kGaugeBlockSize>;

/// Lazily-allocated block directory; `Block` cells are written by a
/// single owner thread and read (relaxed) by the snapshotter.
template <typename Block, std::uint32_t BlockCount, std::uint32_t BlockSize>
struct BlockDir {
  std::atomic<Block*> blocks[BlockCount] = {};

  ~BlockDir() {
    for (auto& b : blocks) delete b.load(std::memory_order_acquire);
  }

  /// Owner-thread access; allocates the block on first touch.
  typename Block::value_type& cell(std::uint32_t slot) {
    const std::uint32_t bi = slot / BlockSize;
    Block* b = blocks[bi].load(std::memory_order_acquire);
    if (b == nullptr) {
      b = new Block();
      blocks[bi].store(b, std::memory_order_release);
    }
    return (*b)[slot % BlockSize];
  }

  /// Reader access; nullptr when the block was never touched.
  const typename Block::value_type* peek(std::uint32_t slot) const {
    const Block* b = blocks[slot / BlockSize].load(std::memory_order_acquire);
    return b == nullptr ? nullptr : &(*b)[slot % BlockSize];
  }
};

struct Shard {
  BlockDir<CounterBlock, kCounterBlocks, kCounterBlockSize> counters;
  BlockDir<HistBlock, kHistBlocks, kHistBlockSize> hists;
};

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  Kind kind;
  std::uint32_t slot;  ///< per-kind index
};

struct HistAgg {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = kInf;
  double max = -kInf;
  std::uint64_t buckets[Histogram::kBuckets] = {};

  void merge_cell(const HistCell& c) {
    count += c.count.load(std::memory_order_relaxed);
    sum += c.sum.load(std::memory_order_relaxed);
    min = std::min(min, c.min.load(std::memory_order_relaxed));
    max = std::max(max, c.max.load(std::memory_order_relaxed));
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      buckets[i] += c.buckets[i].load(std::memory_order_relaxed);
    }
  }
};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

// ---- Histogram bucketing -------------------------------------------------

int Histogram::bucket_index(double v) noexcept {
  // Log-linear grid: bucket 0 is the underflow (v < 1e-18, incl. <= 0),
  // the last bucket the overflow (v >= 1e18); in between, decade e
  // (e in [-18, 17]) is split into 9 linear sub-buckets
  // [m*10^e, (m+1)*10^e) for m = 1..9.
  if (!(v >= 1e-18)) return 0;  // also catches NaN
  if (v >= 1e18) return kBuckets - 1;
  int e = static_cast<int>(std::floor(std::log10(v)));
  e = std::clamp(e, -kDecades / 2 - 1, kDecades / 2);
  int m = static_cast<int>(v / std::pow(10.0, e));
  if (m < 1) {
    // v sits just below 10^e but log10 rounded up: top sub-bucket of
    // the previous decade.
    m = kSubBuckets;
    --e;
  } else if (m > kSubBuckets) {
    // v sits at/above 10^(e+1) but log10 rounded down.
    m = 1;
    ++e;
  }
  if (e < -kDecades / 2) return 0;
  if (e >= kDecades / 2) return kBuckets - 1;
  int i = 1 + (e + kDecades / 2) * kSubBuckets + (m - 1);
  // m*10^e is recomputed from (e, m) in bucket_lower_bound and can land
  // an ulp away from v's own rounding; nudge so the [lower, upper)
  // contract holds exactly for the bounds the snapshot will report.
  if (v < bucket_lower_bound(i) && i > 1) {
    --i;
  } else if (v >= bucket_upper_bound(i) && i < kBuckets - 1) {
    ++i;
  }
  return i;
}

double Histogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0.0;
  if (i >= kBuckets - 1) return 1e18;
  const int idx = i - 1;
  const int e = idx / kSubBuckets - kDecades / 2;
  const int m = idx % kSubBuckets + 1;
  return static_cast<double>(m) * std::pow(10.0, e);
}

double Histogram::bucket_upper_bound(int i) {
  if (i <= 0) return 1e-18;
  if (i >= kBuckets - 1) return kInf;
  const int idx = i - 1;
  const int e = idx / kSubBuckets - kDecades / 2;
  const int m = idx % kSubBuckets + 1;
  if (m == kSubBuckets) return std::pow(10.0, e + 1);
  return static_cast<double>(m + 1) * std::pow(10.0, e);
}

// ---- registry internals --------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> index;  // name -> metrics[]
  std::vector<MetricInfo> metrics;
  std::uint32_t n_counters = 0;
  std::uint32_t n_gauges = 0;
  std::uint32_t n_hists = 0;

  std::vector<Shard*> shards;  // live thread shards (owned)
  std::vector<std::uint64_t> retired_counters;
  std::vector<HistAgg> retired_hists;
  BlockDir<GaugeBlock, kGaugeBlocks, kGaugeBlockSize> gauges;

  std::uint32_t intern(std::string_view name, Kind kind) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(std::string(name));
    if (it != index.end()) {
      const MetricInfo& info = metrics[it->second];
      if (info.kind != kind) {
        throw std::invalid_argument("MetricsRegistry: metric '" +
                                    std::string(name) +
                                    "' already registered as " +
                                    kind_name(info.kind));
      }
      return info.slot;
    }
    std::uint32_t slot = 0;
    switch (kind) {
      case Kind::kCounter:
        slot = n_counters++;
        if (slot >= kCounterBlocks * kCounterBlockSize) {
          throw std::runtime_error("MetricsRegistry: counter space full");
        }
        retired_counters.resize(n_counters, 0);
        break;
      case Kind::kGauge:
        slot = n_gauges++;
        if (slot >= kGaugeBlocks * kGaugeBlockSize) {
          throw std::runtime_error("MetricsRegistry: gauge space full");
        }
        gauges.cell(slot);  // touch so snapshots see the block
        break;
      case Kind::kHistogram:
        slot = n_hists++;
        if (slot >= kHistBlocks * kHistBlockSize) {
          throw std::runtime_error("MetricsRegistry: histogram space full");
        }
        retired_hists.resize(n_hists);
        break;
    }
    index.emplace(std::string(name), static_cast<std::uint32_t>(
                                         metrics.size()));
    metrics.push_back({std::string(name), kind, slot});
    return slot;
  }

  Shard* adopt_shard() {
    auto* s = new Shard();
    std::lock_guard<std::mutex> lock(mu);
    shards.push_back(s);
    return s;
  }

  void retire_shard(Shard* s) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::uint32_t slot = 0; slot < n_counters; ++slot) {
      if (const CounterCell* c = s->counters.peek(slot)) {
        retired_counters[slot] += c->value.load(std::memory_order_relaxed);
      }
    }
    for (std::uint32_t slot = 0; slot < n_hists; ++slot) {
      if (const HistCell* c = s->hists.peek(slot)) {
        retired_hists[slot].merge_cell(*c);
      }
    }
    shards.erase(std::remove(shards.begin(), shards.end(), s),
                 shards.end());
    delete s;
  }
};

namespace {

/// Per-thread shard handle; flushes into the (leaked) global registry's
/// retired totals when the thread exits.
struct ThreadShard {
  MetricsRegistry::Impl* owner = nullptr;
  Shard* shard = nullptr;
  ~ThreadShard() {
    if (owner != nullptr && shard != nullptr) {
      owner->retire_shard(shard);
    }
  }
};

Shard& shard_for(MetricsRegistry::Impl* impl) {
  thread_local ThreadShard t;
  if (t.shard == nullptr) {
    t.owner = impl;
    t.shard = impl->adopt_shard();
  }
  return *t.shard;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry();  // intentionally leaked
  return *g;
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter{this, impl_->intern(name, Kind::kCounter)};
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge{this, impl_->intern(name, Kind::kGauge)};
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return Histogram{this, impl_->intern(name, Kind::kHistogram)};
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t n) {
  counter(name).add(n);
}

void MetricsRegistry::set_gauge(std::string_view name, double v) {
  gauge(name).set(v);
}

void MetricsRegistry::max_gauge(std::string_view name, double v) {
  gauge(name).set_max(v);
}

void MetricsRegistry::record_histogram(std::string_view name, double v) {
  histogram(name).record(v);
}

void MetricsRegistry::counter_add(std::uint32_t id,
                                  std::uint64_t n) noexcept {
  auto& cell = shard_for(impl_).counters.cell(id);
  cell.value.store(cell.value.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(std::uint32_t id, double v) noexcept {
  auto& cell = impl_->gauges.cell(id);
  cell.bits.store(std::bit_cast<std::uint64_t>(v),
                  std::memory_order_relaxed);
  cell.ever_set.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_max(std::uint32_t id, double v) noexcept {
  auto& cell = impl_->gauges.cell(id);
  double cur = cell.peak.load(std::memory_order_relaxed);
  while (v > cur && !cell.peak.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
  cell.bits.store(
      std::bit_cast<std::uint64_t>(cell.peak.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
  cell.ever_set.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::histogram_record(std::uint32_t id, double v) noexcept {
  auto& cell = shard_for(impl_).hists.cell(id);
  cell.count.store(cell.count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  cell.sum.store(cell.sum.load(std::memory_order_relaxed) + v,
                 std::memory_order_relaxed);
  if (v < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(v, std::memory_order_relaxed);
  }
  if (v > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(v, std::memory_order_relaxed);
  }
  auto& bucket = cell.buckets[Histogram::bucket_index(v)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) const noexcept {
  if (reg_ != nullptr) reg_->counter_add(id_, n);
}

void Gauge::set(double v) const noexcept {
  if (reg_ != nullptr) reg_->gauge_set(id_, v);
}

void Gauge::set_max(double v) const noexcept {
  if (reg_ != nullptr) reg_->gauge_max(id_, v);
}

void Histogram::record(double v) const noexcept {
  if (reg_ != nullptr) reg_->histogram_record(id_, v);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const MetricInfo& m : impl_->metrics) {
    switch (m.kind) {
      case Kind::kCounter: {
        std::uint64_t total = impl_->retired_counters[m.slot];
        for (const Shard* s : impl_->shards) {
          if (const CounterCell* c = s->counters.peek(m.slot)) {
            total += c->value.load(std::memory_order_relaxed);
          }
        }
        out.counters.push_back({m.name, total});
        break;
      }
      case Kind::kGauge: {
        const GaugeCell* c = impl_->gauges.peek(m.slot);
        MetricsSnapshot::GaugeValue g;
        g.name = m.name;
        if (c != nullptr && c->ever_set.load(std::memory_order_relaxed)) {
          g.value = std::bit_cast<double>(
              c->bits.load(std::memory_order_relaxed));
          g.ever_set = true;
        }
        out.gauges.push_back(std::move(g));
        break;
      }
      case Kind::kHistogram: {
        HistAgg agg = impl_->retired_hists[m.slot];
        for (const Shard* s : impl_->shards) {
          if (const HistCell* c = s->hists.peek(m.slot)) {
            agg.merge_cell(*c);
          }
        }
        MetricsSnapshot::HistogramValue h;
        h.name = m.name;
        h.count = agg.count;
        h.sum = agg.sum;
        if (agg.count > 0) {
          h.min = agg.min;
          h.max = agg.max;
        }
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (agg.buckets[i] > 0) {
            h.buckets.push_back({Histogram::bucket_lower_bound(i),
                                 Histogram::bucket_upper_bound(i),
                                 agg.buckets[i]});
          }
        }
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::fill(impl_->retired_counters.begin(), impl_->retired_counters.end(),
            std::uint64_t{0});
  for (auto& h : impl_->retired_hists) h = HistAgg{};
  for (Shard* s : impl_->shards) {
    for (std::uint32_t slot = 0; slot < impl_->n_counters; ++slot) {
      if (const CounterCell* c = s->counters.peek(slot)) {
        const_cast<CounterCell*>(c)->value.store(
            0, std::memory_order_relaxed);
      }
    }
    for (std::uint32_t slot = 0; slot < impl_->n_hists; ++slot) {
      if (const HistCell* c = s->hists.peek(slot)) {
        auto* cell = const_cast<HistCell*>(c);
        cell->count.store(0, std::memory_order_relaxed);
        cell->sum.store(0.0, std::memory_order_relaxed);
        cell->min.store(kInf, std::memory_order_relaxed);
        cell->max.store(-kInf, std::memory_order_relaxed);
        for (auto& b : cell->buckets) {
          b.store(0, std::memory_order_relaxed);
        }
      }
    }
  }
  for (std::uint32_t slot = 0; slot < impl_->n_gauges; ++slot) {
    if (const GaugeCell* c = impl_->gauges.peek(slot)) {
      auto* cell = const_cast<GaugeCell*>(c);
      cell->bits.store(0, std::memory_order_relaxed);
      cell->peak.store(-kInf, std::memory_order_relaxed);
      cell->ever_set.store(false, std::memory_order_relaxed);
    }
  }
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->metrics.size();
}

// ---- quantile estimation -------------------------------------------------

double MetricsSnapshot::HistogramValue::quantile(double q) const {
  // An empty histogram has no quantiles; NaN serializes as JSON null.
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const Bucket& b = buckets[i];
    if (b.count == 0) continue;
    const double next = cum + static_cast<double>(b.count);
    if (next >= target) {
      // Linear interpolation within the bucket, clamped to the observed
      // range so the underflow (lower = 0) bucket stays finite and the
      // estimate never leaves [min, max].
      if (!std::isfinite(b.upper)) {
        // Overflow bucket: clamp at the top log-linear boundary. The
        // grid carries no shape information past it, so interpolating
        // toward max would let one huge outlier (or a recorded +inf,
        // where max itself is inf) drag every upper quantile with it.
        const double floor_v = std::max(b.lower, min);
        return std::isfinite(floor_v) ? floor_v : b.lower;
      }
      double lo = std::max(b.lower, min);
      double hi = std::min(b.upper, max);
      if (i == 0 && b.lower == 0.0) lo = min;  // underflow: true floor
      if (!(hi >= lo)) hi = lo;
      const double frac = (target - cum) / static_cast<double>(b.count);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return max;
}

// ---- export --------------------------------------------------------------

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"fpsq.metrics.v2\",\n  \"manifest\": ";
  out += RunManifest::current().to_json();
  out += ",\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    json::escape_to(out, counters[i].name);
    out += "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    json::escape_to(out, gauges[i].name);
    out += "\": ";
    json::number_to(out, gauges[i].ever_set ? gauges[i].value : 0.0);
  }
  out += gauges.empty() ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    json::escape_to(out, h.name);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": ";
    json::number_to(out, h.sum);
    out += ", \"min\": ";
    json::number_to(out, h.count > 0 ? h.min : 0.0);
    out += ", \"max\": ";
    json::number_to(out, h.count > 0 ? h.max : 0.0);
    out += ", \"mean\": ";
    json::number_to(out, h.mean());
    out += ", \"p50\": ";
    json::number_to(out, h.quantile(0.50));
    out += ", \"p90\": ";
    json::number_to(out, h.quantile(0.90));
    out += ", \"p99\": ";
    json::number_to(out, h.quantile(0.99));
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "[";
      json::number_to(out, h.buckets[b].lower);
      out += ", ";
      json::number_to(out, h.buckets[b].upper);
      out += ", " + std::to_string(h.buckets[b].count) + "]";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}" : "\n  }";
  out += "\n}";
  return out;
}

bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = snapshot.to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                      body.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

std::string render_summary(const MetricsSnapshot& s) {
  std::ostringstream os;
  os.precision(4);
  os << "| metric | type | count | value/mean | p50 | p90 | p99 | min |"
        " max |\n";
  os << "|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& c : s.counters) {
    os << "| " << c.name << " | counter | " << c.value
       << " | | | | | | |\n";
  }
  for (const auto& g : s.gauges) {
    os << "| " << g.name << " | gauge | | ";
    if (g.ever_set) {
      os << g.value;
    } else {
      os << "-";
    }
    os << " | | | | | |\n";
  }
  for (const auto& h : s.histograms) {
    os << "| " << h.name << " | histogram | " << h.count << " | "
       << h.mean() << " | ";
    if (h.count > 0) {
      os << h.quantile(0.50) << " | " << h.quantile(0.90) << " | "
         << h.quantile(0.99) << " | " << h.min << " | " << h.max;
    } else {
      os << "- | - | - | - | -";
    }
    os << " |\n";
  }
  if (s.counters.empty() && s.gauges.empty() && s.histograms.empty()) {
    os << "| (no metrics recorded) | | | | | | | | |\n";
  }
  return os.str();
}

void ensure_baseline_schema() {
  auto& reg = MetricsRegistry::global();
  (void)reg.counter("sim.events_executed");
  (void)reg.gauge("sim.events_per_sec");
  (void)reg.gauge("sim.heap_high_water");
  (void)reg.gauge("sim.run_wall_s");
  (void)reg.counter("sim.replications");
  // Parallel runtime (fpsq::par).
  (void)reg.gauge("par.pool.threads");
  (void)reg.counter("par.pool.tasks");
  (void)reg.counter("par.pool.regions");
  (void)reg.gauge("par.pool.queue_high_water");
  (void)reg.gauge("par.pool.busy_s");
  (void)reg.gauge("par.pool.utilization");
  // Solver memoization (queueing::SolverCache).
  (void)reg.counter("queueing.cache.dek1.hits");
  (void)reg.counter("queueing.cache.dek1.misses");
  (void)reg.counter("queueing.cache.giek1.hits");
  (void)reg.counter("queueing.cache.giek1.misses");
  (void)reg.counter("queueing.cache.md1.hits");
  (void)reg.counter("queueing.cache.md1.misses");
  (void)reg.counter("queueing.cache.warm_starts");
  (void)reg.gauge("queueing.cache.entries");
  // Robustness layer (fpsq::err + the degrading sweep drivers).
  (void)reg.counter("err.solver_failures");
  (void)reg.counter("err.injected_faults");
  (void)reg.counter("err.fallback_cells");
  (void)reg.counter("err.failed_cells");
  // Tail-inversion kernel (queueing::TailKernel + invert_tail_newton).
  (void)reg.counter("queueing.kernel.tail_evals");
  (void)reg.counter("queueing.kernel.density_evals");
  (void)reg.counter("queueing.kernel.closed_form_hits");
  (void)reg.counter("queueing.kernel.quad_fallbacks");
  (void)reg.counter("queueing.convolution.tail_evals");
  (void)reg.histogram("queueing.kernel.newton_iters");
  // Serving front end (fpsq::serve): undeliverable responses.
  (void)reg.counter("serve.write_errors");
  // Differential self-check harness (fpsq::check, `fpsq check`).
  (void)reg.counter("check.points");
  (void)reg.counter("check.comparisons");
  (void)reg.counter("check.mismatches");
  (void)reg.counter("check.skipped");
}

}  // namespace fpsq::obs
