// fpsq::obs — zero-dependency metrics: named counters, gauges and
// fixed-bucket histograms behind a process-global registry.
//
// Design constraints (the hot paths live inside root finders and the
// event kernel):
//   * recording is lock-free: counters and histograms write to
//     thread-local shards (relaxed atomics, single writer per cell) that
//     are merged when a snapshot is taken; gauges are single global
//     atomics;
//   * handles are cheap value types; the FPSQ_* macros cache the
//     name->id resolution in a function-local static, so steady-state
//     cost is one indexed store;
//   * everything compiles out under -DFPSQ_NO_METRICS: the macros become
//     no-ops and the instrumentation helpers empty inline functions. The
//     registry API itself stays available (the CLI still accepts
//     --metrics-out and writes an empty, schema-valid file).
//
// Metric names follow `subsystem.object.event`, e.g.
// `queueing.dek1.fixed_point.iterations` (see docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fpsq::obs {

class MetricsRegistry;

/// Handle to a named monotonic counter.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Handle to a named gauge (last-write-wins double, plus a CAS max).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept;
  /// Monotone update: keeps the largest value ever offered (high-water).
  void set_max(double v) const noexcept;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Handle to a named fixed-bucket histogram on a log-linear grid: 36
/// decades spanning [1e-18, 1e18), each split into 9 linear sub-buckets
/// ([m·10^e, (m+1)·10^e) for m = 1..9), plus an underflow and an
/// overflow bucket. One grid serves iteration counts, residuals and
/// latencies alike, and the sub-decade resolution bounds the relative
/// error of interpolated quantiles by one sub-bucket width (< 50%,
/// typically ~11%; see MetricsSnapshot::HistogramValue::quantile).
class Histogram {
 public:
  Histogram() = default;
  void record(double v) const noexcept;

  static constexpr int kDecades = 36;      ///< [1e-18, 1e18)
  static constexpr int kSubBuckets = 9;    ///< linear within a decade
  static constexpr int kBuckets = kDecades * kSubBuckets + 2;
  /// Inclusive lower bound of bucket `i` (0 for the underflow bucket).
  [[nodiscard]] static double bucket_lower_bound(int i);
  /// Exclusive upper bound of bucket `i` (+inf for the overflow bucket).
  [[nodiscard]] static double bucket_upper_bound(int i);
  /// Bucket index for a value.
  [[nodiscard]] static int bucket_index(double v) noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Point-in-time merged view of every registered metric.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
    bool ever_set = false;
  };
  struct HistogramValue {
    struct Bucket {
      double lower = 0.0;          ///< inclusive
      double upper = 0.0;          ///< exclusive (+inf for overflow)
      std::uint64_t count = 0;
    };
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;  ///< meaningful only when count > 0
    /// Non-empty buckets, ascending by lower bound.
    std::vector<Bucket> buckets;
    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Interpolated quantile estimate (q in [0, 1]): linear within the
    /// bucket containing the target rank, clamped to [min, max]. The
    /// estimate is exact at q = 0 / q = 1 and off by at most one
    /// sub-decade bucket width elsewhere. Returns NaN when empty
    /// (serialized as JSON null).
    [[nodiscard]] double quantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Serializes the snapshot as a stable-schema JSON document
  /// (fpsq.metrics.v2): the run manifest, then counters, gauges and
  /// histograms (with interpolated p50/p90/p99 per histogram).
  [[nodiscard]] std::string to_json() const;
};

/// The process-global registry. Metric creation (name -> id) takes a
/// mutex; recording through handles does not.
class MetricsRegistry {
 public:
  /// The singleton is intentionally leaked: thread-local shards may be
  /// flushed from thread destructors at any point during shutdown.
  static MetricsRegistry& global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns `name` and returns a handle; repeated calls with the same
  /// name return handles to the same metric. A name registered with a
  /// different kind throws std::invalid_argument.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Dynamic-name conveniences (one hash lookup per call).
  void add_counter(std::string_view name, std::uint64_t n = 1);
  void set_gauge(std::string_view name, double v);
  void max_gauge(std::string_view name, double v);
  void record_histogram(std::string_view name, double v);

  /// Merges all thread shards into a consistent view.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value (names stay registered). Intended for tests.
  void reset();

  /// Number of distinct registered metrics.
  [[nodiscard]] std::size_t metric_count() const;

  struct Impl;  // public so the .cpp's thread-shard helpers can name it

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  MetricsRegistry();
  ~MetricsRegistry();

  void counter_add(std::uint32_t id, std::uint64_t n) noexcept;
  void gauge_set(std::uint32_t id, double v) noexcept;
  void gauge_max(std::uint32_t id, double v) noexcept;
  void histogram_record(std::uint32_t id, double v) noexcept;

  Impl* impl_;
};

/// Writes `snapshot.to_json()` (plus a trailing newline) to `path`.
/// Returns false on I/O failure.
bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot);

/// Renders a human-readable summary table (markdown-compatible) of the
/// snapshot: counters, gauges, then histograms with count/mean/max.
[[nodiscard]] std::string render_summary(const MetricsSnapshot& snapshot);

/// Registers the canonical simulator / solver metric names so exported
/// snapshots keep a stable schema even for purely analytic runs.
void ensure_baseline_schema();

}  // namespace fpsq::obs

// ---- recording macros ----------------------------------------------------
// `name` must be a string literal (the handle is cached in a static).
#ifndef FPSQ_NO_METRICS
#define FPSQ_OBS_COUNT_N(name, n)                                       \
  do {                                                                  \
    static const ::fpsq::obs::Counter fpsq_obs_c =                      \
        ::fpsq::obs::MetricsRegistry::global().counter(name);           \
    fpsq_obs_c.add(n);                                                  \
  } while (0)
#define FPSQ_OBS_COUNT(name) FPSQ_OBS_COUNT_N(name, 1)
#define FPSQ_OBS_GAUGE_SET(name, v)                                     \
  do {                                                                  \
    static const ::fpsq::obs::Gauge fpsq_obs_g =                        \
        ::fpsq::obs::MetricsRegistry::global().gauge(name);             \
    fpsq_obs_g.set(v);                                                  \
  } while (0)
#define FPSQ_OBS_GAUGE_MAX(name, v)                                     \
  do {                                                                  \
    static const ::fpsq::obs::Gauge fpsq_obs_g =                        \
        ::fpsq::obs::MetricsRegistry::global().gauge(name);             \
    fpsq_obs_g.set_max(v);                                              \
  } while (0)
#define FPSQ_OBS_HIST(name, v)                                          \
  do {                                                                  \
    static const ::fpsq::obs::Histogram fpsq_obs_h =                    \
        ::fpsq::obs::MetricsRegistry::global().histogram(name);         \
    fpsq_obs_h.record(v);                                               \
  } while (0)
#else
// Disabled: evaluate the value expression (side-effect parity, silences
// unused-variable warnings) but touch no registry state.
#define FPSQ_OBS_COUNT_N(name, n) ((void)(n))
#define FPSQ_OBS_COUNT(name) ((void)0)
#define FPSQ_OBS_GAUGE_SET(name, v) ((void)(v))
#define FPSQ_OBS_GAUGE_MAX(name, v) ((void)(v))
#define FPSQ_OBS_HIST(name, v) ((void)(v))
#endif
