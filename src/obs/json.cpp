#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fpsq::obs::json {

void escape_to(std::string& out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  escape_to(out, s);
  return out;
}

void number_to(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string_view fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string
                                          : std::string(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed
          // through as-is; our writers only emit \u00xx controls).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    double num = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, num);
    if (start == pos_ || ec != std::errc{} || ptr != last) {
      pos_ = start;
      fail("invalid number");
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = num;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace fpsq::obs::json
