// fpsq::obs::json — minimal JSON support shared by the observability
// layer: a string-escape helper (used by the metrics exporter, the run
// manifest and bench::JsonReport) and a small recursive-descent parser
// used by `fpsq benchdiff` and the timeline/manifest round-trip tests.
//
// The parser handles the full JSON grammar (objects, arrays, strings
// with escapes, numbers, booleans, null) but is deliberately simple:
// the documents it reads — BENCH_*.json, fpsq.metrics.v2 snapshots,
// fpsq.timeline.v1 series — are all machine-written by this repo.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fpsq::obs::json {

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters). Does not add the surrounding quotes.
void escape_to(std::string& out, std::string_view s);

/// Returns `s` JSON-escaped (without surrounding quotes).
[[nodiscard]] std::string escape(std::string_view s);

/// Appends a JSON number; NaN and infinities become `null` (they are
/// not representable in JSON).
void number_to(std::string& out, double v);

/// A parsed JSON value. Object member order is preserved.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// `find(key)->number` with a fallback for absent / non-numeric.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const;

  /// `find(key)->string` with a fallback for absent / non-string.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
};

/// Parses a complete JSON document; trailing non-whitespace is an
/// error. Throws std::runtime_error with a byte offset on malformed
/// input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace fpsq::obs::json
