#include "obs/benchcompare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace fpsq::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// One bench's comparable scalars: wall_s plus the metrics object.
struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> values;  // NaN = JSON null
};

std::vector<BenchEntry> extract_benches(const json::Value& doc) {
  const json::Value* array = nullptr;
  if (doc.is_array()) {
    array = &doc;  // v1: bare array
  } else if (doc.is_object()) {
    array = doc.find("benches");  // v2 envelope
  }
  if (array == nullptr || !array->is_array()) {
    throw std::runtime_error(
        "not a bench collection (expected a JSON array or an object "
        "with a \"benches\" array)");
  }
  std::vector<BenchEntry> out;
  out.reserve(array->array.size());
  for (const json::Value& b : array->array) {
    if (!b.is_object()) {
      throw std::runtime_error("bench entry is not a JSON object");
    }
    BenchEntry e;
    e.name = b.string_or("name", "");
    if (e.name.empty()) {
      throw std::runtime_error("bench entry has no \"name\"");
    }
    if (const json::Value* w = b.find("wall_s");
        w != nullptr && (w->is_number() || w->is_null())) {
      e.values.emplace_back("wall_s", w->is_number() ? w->number : kNaN);
    }
    if (const json::Value* m = b.find("metrics");
        m != nullptr && m->is_object()) {
      for (const auto& [key, v] : m->object) {
        e.values.emplace_back(key, v.is_number() ? v.number : kNaN);
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

const BenchEntry* find_bench(const std::vector<BenchEntry>& v,
                             const std::string& name) {
  for (const auto& e : v) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const double* find_value(const BenchEntry& e, const std::string& key) {
  for (const auto& [k, v] : e.values) {
    if (k == key) return &v;
  }
  return nullptr;
}

double rel_delta_of(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 0.0;
  return std::abs(a - b) / denom;
}

const char* severity_name(BenchDiffFinding::Severity s) {
  return s == BenchDiffFinding::Severity::kFail ? "fail" : "warn";
}

}  // namespace

MetricClass classify_metric(std::string_view key) {
  if (key == "threads" || key.rfind("cache_", 0) == 0) {
    return MetricClass::kInfo;
  }
  if (key == "wall_s" || ends_with(key, "_s") ||
      contains(key, "events_per_sec") || contains(key, "speedup")) {
    return MetricClass::kTiming;
  }
  return MetricClass::kAccuracy;
}

const char* metric_class_name(MetricClass c) {
  switch (c) {
    case MetricClass::kTiming: return "timing";
    case MetricClass::kAccuracy: return "accuracy";
    case MetricClass::kInfo: return "info";
  }
  return "?";
}

int BenchDiffReport::exit_code() const {
  if (failures > 0) return 4;
  if (warnings > 0) return 3;
  return 0;
}

const char* BenchDiffReport::verdict() const {
  if (failures > 0) return "fail";
  if (warnings > 0) return "warn";
  return "pass";
}

std::string BenchDiffReport::to_markdown() const {
  std::string out;
  char buf[160];
  out += "# fpsq benchdiff\n\n";
  std::snprintf(buf, sizeof buf,
                "**verdict: %s** — %zu failure(s), %zu warning(s) over "
                "%zu bench(es), %zu compared metric(s)\n",
                verdict(), failures, warnings, benches_compared,
                metrics_compared);
  out += buf;
  if (findings.empty()) {
    out += "\nEvery compared metric is within tolerance.\n";
    return out;
  }
  out += "\n| bench | metric | class | baseline | current | rel delta |"
         " severity | note |\n";
  out += "|---|---|---|---|---|---|---|---|\n";
  for (const auto& f : findings) {
    out += "| " + f.bench + " | " + (f.metric.empty() ? "—" : f.metric) +
           " | ";
    out += metric_class_name(f.cls);
    out += " | ";
    if (f.has_values) {
      std::snprintf(buf, sizeof buf, "%.10g | %.10g | %.3g", f.baseline,
                    f.current, f.rel_delta);
      out += buf;
    } else {
      out += "— | — | —";
    }
    out += " | ";
    out += severity_name(f.severity);
    out += " | " + f.note + " |\n";
  }
  return out;
}

std::string BenchDiffReport::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"schema\": \"fpsq.benchdiff.v1\",\n  \"verdict\": \"";
  out += verdict();
  out += "\",\n  \"exit_code\": " + std::to_string(exit_code());
  out += ",\n  \"benches_compared\": " + std::to_string(benches_compared);
  out += ",\n  \"metrics_compared\": " + std::to_string(metrics_compared);
  out += ",\n  \"warnings\": " + std::to_string(warnings);
  out += ",\n  \"failures\": " + std::to_string(failures);
  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"bench\": \"";
    json::escape_to(out, f.bench);
    out += "\", \"metric\": \"";
    json::escape_to(out, f.metric);
    out += "\", \"class\": \"";
    out += metric_class_name(f.cls);
    out += "\", \"severity\": \"";
    out += severity_name(f.severity);
    out += "\", \"baseline\": ";
    json::number_to(out, f.has_values ? f.baseline : kNaN);
    out += ", \"current\": ";
    json::number_to(out, f.has_values ? f.current : kNaN);
    out += ", \"rel_delta\": ";
    json::number_to(out, f.has_values ? f.rel_delta : kNaN);
    out += ", \"note\": \"";
    json::escape_to(out, f.note);
    out += "\"}";
  }
  out += findings.empty() ? "]" : "\n  ]";
  out += "\n}";
  return out;
}

BenchDiffReport diff_bench_collections(const json::Value& baseline,
                                       const json::Value& current,
                                       const BenchDiffOptions& options) {
  const auto base = extract_benches(baseline);
  const auto cur = extract_benches(current);
  BenchDiffReport report;

  auto add = [&report](BenchDiffFinding f) {
    if (f.severity == BenchDiffFinding::Severity::kFail) {
      ++report.failures;
    } else {
      ++report.warnings;
    }
    report.findings.push_back(std::move(f));
  };

  // Benches only present in the current run — reported as warnings
  // below, and used to hint at a likely rename when a baseline bench
  // went missing (renames otherwise look like one disappearance plus
  // one unrelated addition).
  std::string only_in_current;
  for (const BenchEntry& c : cur) {
    if (find_bench(base, c.name) == nullptr) {
      if (!only_in_current.empty()) only_in_current += ", ";
      only_in_current += c.name;
    }
  }

  for (const BenchEntry& b : base) {
    const BenchEntry* c = find_bench(cur, b.name);
    if (c == nullptr) {
      BenchDiffFinding f;
      f.bench = b.name;
      f.severity = BenchDiffFinding::Severity::kFail;
      f.note = "bench missing from current run";
      if (!only_in_current.empty()) {
        f.note += " (renamed? current-only benches: " + only_in_current +
                  " — refresh the baseline if intentional)";
      }
      add(std::move(f));
      continue;
    }
    ++report.benches_compared;
    for (const auto& [key, base_v] : b.values) {
      const MetricClass cls = classify_metric(key);
      if (cls == MetricClass::kInfo) continue;
      const double* cv = find_value(*c, key);
      BenchDiffFinding f;
      f.bench = b.name;
      f.metric = key;
      f.cls = cls;
      f.severity = cls == MetricClass::kAccuracy
                       ? BenchDiffFinding::Severity::kFail
                       : BenchDiffFinding::Severity::kWarn;
      if (cv == nullptr) {
        f.note = "metric missing from current run";
        add(std::move(f));
        continue;
      }
      ++report.metrics_compared;
      const bool base_nan = std::isnan(base_v);
      const bool cur_nan = std::isnan(*cv);
      if (base_nan || cur_nan) {
        if (base_nan != cur_nan) {
          f.note = base_nan ? "baseline value is null"
                            : "current value is null";
          add(std::move(f));
        }
        continue;
      }
      f.has_values = true;
      f.baseline = base_v;
      f.current = *cv;
      f.rel_delta = rel_delta_of(base_v, *cv);
      if (cls == MetricClass::kTiming) {
        const double allowed =
            options.timing_abs_tol +
            options.timing_rel_tol *
                std::max(std::abs(base_v), std::abs(*cv));
        if (std::abs(base_v - *cv) > allowed) {
          f.note = "timing delta beyond noise tolerance";
          add(std::move(f));
        }
      } else {
        const double allowed =
            options.accuracy_abs_tol +
            options.accuracy_rel_tol *
                std::max(std::abs(base_v), std::abs(*cv));
        if (std::abs(base_v - *cv) > allowed) {
          f.note = "accuracy drift beyond tolerance";
          add(std::move(f));
        }
      }
    }
    // Metrics the current run added: flag for a baseline refresh.
    for (const auto& [key, cur_v] : c->values) {
      (void)cur_v;
      if (classify_metric(key) == MetricClass::kInfo) continue;
      if (find_value(b, key) == nullptr) {
        BenchDiffFinding f;
        f.bench = b.name;
        f.metric = key;
        f.cls = classify_metric(key);
        f.severity = BenchDiffFinding::Severity::kWarn;
        f.note = "new metric (not in baseline — refresh it)";
        add(std::move(f));
      }
    }
  }
  for (const BenchEntry& c : cur) {
    if (find_bench(base, c.name) == nullptr) {
      BenchDiffFinding f;
      f.bench = c.name;
      f.severity = BenchDiffFinding::Severity::kWarn;
      f.note = "new bench (not in baseline — refresh it)";
      add(std::move(f));
    }
  }
  return report;
}

}  // namespace fpsq::obs
