// fpsq::obs — run manifest (schema fpsq.manifest.v1): the provenance
// record embedded in every metrics snapshot, timeline series, BENCHJSON
// line and `fpsq report`, so a number in a benchmark file can always be
// traced back to the build and run configuration that produced it.
//
// Build-time fields (git sha, build type, compiler, sanitizer, the
// FPSQ_NO_METRICS switch) are baked in by CMake; host/time fields are
// captured once per process on first access, so every manifest written
// by one run is identical. Run-scoped fields (threads, cache, seed) are
// mutable: the CLI and the benches set them from their actual
// configuration before exporting anything.
#pragma once

#include <cstdint>
#include <string>

namespace fpsq::obs {

struct RunManifest {
  std::string schema = "fpsq.manifest.v1";
  std::string git_sha;        ///< HEAD at configure time ("unknown" outside git)
  std::string build_type;     ///< CMAKE_BUILD_TYPE
  std::string compiler;       ///< "<id> <version>"
  std::string sanitizer;      ///< "address", "undefined" or "none"
  bool metrics_compiled = true;  ///< false under -DFPSQ_NO_METRICS
  std::string hostname;
  std::string timestamp_utc;  ///< ISO 8601, captured at process start
  unsigned threads = 0;       ///< worker count (hardware default until set)
  bool cache_enabled = true;  ///< solver memoization on/off
  bool has_seed = false;      ///< seed is meaningful only when set
  std::uint64_t seed = 0;

  /// Serializes as a compact (single-line) JSON object.
  [[nodiscard]] std::string to_json() const;

  /// The process-wide manifest. Build/host/time fields are filled on
  /// first call; callers mutate the run-scoped fields in place.
  static RunManifest& current();
};

}  // namespace fpsq::obs
