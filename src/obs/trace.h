// fpsq::obs — scoped tracing spans with a fixed-capacity ring-buffer
// recorder and Chrome `trace_event` JSON export (load the file at
// chrome://tracing or https://ui.perfetto.dev).
//
// Usage:
//     void DEk1Solver::solve() {
//       FPSQ_SPAN("dek1.pole_search");
//       ...
//     }
//
// Recording is off by default (a span then costs one branch); the CLI
// enables it when --trace-out is passed. The ring buffer overwrites its
// oldest entries when full, so long runs keep the most recent window.
// Under -DFPSQ_NO_METRICS the FPSQ_SPAN macro compiles away entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpsq::obs {

/// One completed span. Times are nanoseconds since the recorder epoch
/// (construction or last reset).
struct TraceEvent {
  const char* name = nullptr;  ///< static string (span label)
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;  ///< nesting depth at the span's open
  std::uint32_t tid = 0;    ///< small per-thread ordinal
};

class TraceRecorder {
 public:
  /// Leaked singleton (same shutdown rationale as MetricsRegistry).
  static TraceRecorder& global();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] bool enabled() const noexcept;
  void set_enabled(bool on) noexcept;

  /// Resizes the ring buffer (rounded up to a power of two, >= 16) and
  /// clears it. Not safe concurrently with recording.
  void set_capacity(std::size_t n);
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Records a completed span (no-op while disabled).
  void record(const TraceEvent& ev) noexcept;

  /// Total spans offered since the last reset (>= snapshot().size()).
  [[nodiscard]] std::uint64_t recorded_total() const noexcept;

  /// Copies out the retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Serializes the retained events as Chrome trace JSON.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Drops all events and restarts the epoch. Keeps enabled/capacity.
  void reset();

  /// Nanoseconds since the recorder epoch (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

 private:
  TraceRecorder();
  ~TraceRecorder();

  struct Impl;
  Impl* impl_;
};

/// RAII span: measures from construction to destruction and records into
/// the global TraceRecorder. When the recorder is disabled at
/// construction time the span is inert.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  // nullptr when inert
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// Writes `chrome_trace_json()` of the global recorder to `path`.
/// Returns false on I/O failure.
bool write_trace_json(const std::string& path);

}  // namespace fpsq::obs

#ifndef FPSQ_NO_METRICS
#define FPSQ_OBS_CONCAT2(a, b) a##b
#define FPSQ_OBS_CONCAT(a, b) FPSQ_OBS_CONCAT2(a, b)
#define FPSQ_SPAN(name) \
  ::fpsq::obs::Span FPSQ_OBS_CONCAT(fpsq_obs_span_, __LINE__)(name)
#else
#define FPSQ_SPAN(name) ((void)0)
#endif
