// fpsq::obs — convergence telemetry for the numeric solvers.
//
// The math layer (roots, minimize, fixed_point, polynomial_roots) calls
// the record_* helpers on every solve; the queueing layer labels those
// calls with a ScopedSolverContext so the metrics are attributed to the
// *call site* rather than the algorithm alone:
//
//     obs::ScopedSolverContext ctx("queueing.dek1");
//     auto r = math::solve_fixed_point(...);   // records
//         // queueing.dek1.fixed_point.{calls,iterations,failures,...}
//
// Per call-site metrics emitted (all names `<site>.<algorithm>.<event>`):
//     .calls           counter   one per invocation
//     .iterations      histogram iterations consumed
//     .failures        counter   returned with converged == false
//     .bracket_errors  counter   bracket/sign-change preconditions failed
//     .residual        histogram final residual (where the solver has one)
//
// Everything here is a no-op under -DFPSQ_NO_METRICS (except
// require_converged, which still throws — convergence escalation is
// error handling, not instrumentation).
#pragma once

#include <stdexcept>
#include <string>

namespace fpsq::obs {

/// Thread-local call-site label; nests (restores the previous label on
/// destruction). Unlabeled solver calls record under "math".
class ScopedSolverContext {
 public:
  explicit ScopedSolverContext(const char* site) noexcept;
  ~ScopedSolverContext();
  ScopedSolverContext(const ScopedSolverContext&) = delete;
  ScopedSolverContext& operator=(const ScopedSolverContext&) = delete;

  /// The innermost active label ("math" when none is set).
  [[nodiscard]] static const char* current() noexcept;

 private:
  const char* prev_;
};

#ifndef FPSQ_NO_METRICS

/// One solver invocation: iteration count plus converged flag.
void record_solver_call(const char* algorithm, int iterations,
                        bool converged);

/// Final residual of a solve (recorded into `<site>.<algo>.residual`).
void record_solver_residual(const char* algorithm, double residual);

/// A bracket / sign-change precondition failure (about to throw).
void record_bracket_error(const char* algorithm);

/// Pole-search diagnostics for a transform solver: the minimum relative
/// pole separation and a condition estimate of the (transposed)
/// Vandermonde system behind the residue weights.
void record_pole_diagnostics(const char* solver, double min_separation,
                             double vandermonde_cond);

#else

inline void record_solver_call(const char*, int, bool) {}
inline void record_solver_residual(const char*, double) {}
inline void record_bracket_error(const char*) {}
inline void record_pole_diagnostics(const char*, double, double) {}

#endif  // FPSQ_NO_METRICS

/// Escalates a solver result that callers previously ignored: records a
/// `<site>.unconverged` event and throws, instead of letting an
/// unconverged value silently flow into quantiles. Works for any result
/// type with `converged` and `iterations` members (math::RootResult,
/// math::MinResult, math::ComplexRootResult).
#ifndef FPSQ_NO_METRICS
namespace detail {
void record_unconverged(const char* what, int iterations);
}  // namespace detail
#else
namespace detail {
inline void record_unconverged(const char*, int) {}
}  // namespace detail
#endif

template <typename Result>
const Result& require_converged(const Result& r, const char* what) {
  if (!r.converged) {
    detail::record_unconverged(what, r.iterations);
    throw std::runtime_error(std::string(what) +
                             ": solver did not converge after " +
                             std::to_string(r.iterations) + " iterations");
  }
  return r;
}

}  // namespace fpsq::obs
