#include "obs/manifest.h"

#include <cstdio>
#include <ctime>
#include <thread>

#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// Build provenance is injected by src/CMakeLists.txt; the fallbacks keep
// non-CMake builds (e.g. a quick compiler-explorer paste) compiling.
#ifndef FPSQ_GIT_SHA
#define FPSQ_GIT_SHA "unknown"
#endif
#ifndef FPSQ_BUILD_TYPE
#define FPSQ_BUILD_TYPE "unknown"
#endif
#ifndef FPSQ_COMPILER
#define FPSQ_COMPILER "unknown"
#endif
#ifndef FPSQ_SANITIZER
#define FPSQ_SANITIZER "none"
#endif

namespace fpsq::obs {

namespace {

std::string detect_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
#endif
  return "unknown";
}

std::string utc_now_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

}  // namespace

RunManifest& RunManifest::current() {
  static RunManifest* m = [] {
    auto* mf = new RunManifest();
    mf->git_sha = FPSQ_GIT_SHA;
    mf->build_type = FPSQ_BUILD_TYPE;
    mf->compiler = FPSQ_COMPILER;
    mf->sanitizer = FPSQ_SANITIZER;
#ifdef FPSQ_NO_METRICS
    mf->metrics_compiled = false;
#else
    mf->metrics_compiled = true;
#endif
    mf->hostname = detect_hostname();
    mf->timestamp_utc = utc_now_iso8601();
    mf->threads = std::thread::hardware_concurrency();
    return mf;
  }();
  return *m;
}

std::string RunManifest::to_json() const {
  std::string out;
  out.reserve(256);
  auto field = [&out](const char* key, const std::string& value,
                      bool first = false) {
    if (!first) out += ",";
    out += "\"";
    out += key;
    out += "\":\"";
    json::escape_to(out, value);
    out += "\"";
  };
  out += "{";
  field("schema", schema, /*first=*/true);
  field("git_sha", git_sha);
  field("build_type", build_type);
  field("compiler", compiler);
  field("sanitizer", sanitizer);
  out += ",\"metrics_compiled\":";
  out += metrics_compiled ? "true" : "false";
  field("hostname", hostname);
  field("timestamp_utc", timestamp_utc);
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"cache_enabled\":";
  out += cache_enabled ? "true" : "false";
  out += ",\"seed\":";
  out += has_seed ? std::to_string(seed) : "null";
  out += "}";
  return out;
}

}  // namespace fpsq::obs
