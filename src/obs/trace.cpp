#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace fpsq::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::uint32_t this_thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t mine = next.fetch_add(1);
  return mine;
}

thread_local std::uint32_t t_span_depth = 0;

}  // namespace

struct TraceRecorder::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> head{0};  // next write position (monotonic)
  std::atomic<std::uint64_t> total{0};
  Clock::time_point epoch = Clock::now();

  mutable std::mutex mu;  // guards ring resize only
  std::vector<TraceEvent> ring;
  std::size_t mask = 0;  // ring.size() - 1, ring size is a power of two
};

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* g = new TraceRecorder();  // intentionally leaked
  return *g;
}

TraceRecorder::TraceRecorder() : impl_(new Impl()) {
  impl_->ring.resize(std::size_t{1} << 16);
  impl_->mask = impl_->ring.size() - 1;
}

TraceRecorder::~TraceRecorder() { delete impl_; }

bool TraceRecorder::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void TraceRecorder::set_enabled(bool on) noexcept {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

void TraceRecorder::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ring.assign(std::bit_ceil(std::max<std::size_t>(n, 16)),
                     TraceEvent{});
  impl_->mask = impl_->ring.size() - 1;
  impl_->head.store(0, std::memory_order_relaxed);
  impl_->total.store(0, std::memory_order_relaxed);
}

std::size_t TraceRecorder::capacity() const noexcept {
  return impl_->ring.size();
}

void TraceRecorder::record(const TraceEvent& ev) noexcept {
  if (!enabled()) return;
  const std::uint64_t pos =
      impl_->head.fetch_add(1, std::memory_order_relaxed);
  impl_->ring[pos & impl_->mask] = ev;
  impl_->total.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::recorded_total() const noexcept {
  return impl_->total.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::uint64_t head = impl_->head.load(std::memory_order_relaxed);
  const std::uint64_t n = std::min<std::uint64_t>(head, impl_->ring.size());
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i) {
    const TraceEvent& ev = impl_->ring[i & impl_->mask];
    if (ev.name != nullptr) out.push_back(ev);
  }
  return out;
}

std::string TraceRecorder::chrome_trace_json() const {
  const auto events = snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\": \"%s\", \"cat\": \"fpsq\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"depth\": %u}}",
                  ev.name, static_cast<double>(ev.start_ns) * 1e-3,
                  static_cast<double>(ev.duration_ns) * 1e-3, ev.tid,
                  ev.depth);
    out += buf;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}";
  return out;
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& ev : impl_->ring) ev = TraceEvent{};
  impl_->head.store(0, std::memory_order_relaxed);
  impl_->total.store(0, std::memory_order_relaxed);
  impl_->epoch = Clock::now();
}

std::uint64_t TraceRecorder::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           impl_->epoch)
          .count());
}

Span::Span(const char* name) noexcept : name_(nullptr) {
  TraceRecorder& rec = TraceRecorder::global();
  if (!rec.enabled()) return;
  name_ = name;
  start_ns_ = rec.now_ns();
  depth_ = t_span_depth++;
}

Span::~Span() {
  if (name_ == nullptr) return;
  --t_span_depth;
  TraceRecorder& rec = TraceRecorder::global();
  TraceEvent ev;
  ev.name = name_;
  ev.start_ns = start_ns_;
  const std::uint64_t end = rec.now_ns();
  ev.duration_ns = end > start_ns_ ? end - start_ns_ : 0;
  ev.depth = depth_;
  ev.tid = this_thread_ordinal();
  rec.record(ev);
}

bool write_trace_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = TraceRecorder::global().chrome_trace_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                      body.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace fpsq::obs
