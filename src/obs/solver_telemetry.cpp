#include "obs/solver_telemetry.h"

#include "obs/metrics.h"

namespace fpsq::obs {

namespace {

thread_local const char* t_site = nullptr;

#ifndef FPSQ_NO_METRICS
std::string metric_name(const char* algorithm, const char* event) {
  std::string name = ScopedSolverContext::current();
  name += '.';
  name += algorithm;
  name += '.';
  name += event;
  return name;
}
#endif

}  // namespace

ScopedSolverContext::ScopedSolverContext(const char* site) noexcept
    : prev_(t_site) {
  t_site = site;
}

ScopedSolverContext::~ScopedSolverContext() { t_site = prev_; }

const char* ScopedSolverContext::current() noexcept {
  return t_site != nullptr ? t_site : "math";
}

#ifndef FPSQ_NO_METRICS

void record_solver_call(const char* algorithm, int iterations,
                        bool converged) {
  auto& reg = MetricsRegistry::global();
  reg.add_counter(metric_name(algorithm, "calls"));
  reg.record_histogram(metric_name(algorithm, "iterations"),
                       static_cast<double>(iterations));
  if (!converged) {
    reg.add_counter(metric_name(algorithm, "failures"));
  }
}

void record_solver_residual(const char* algorithm, double residual) {
  MetricsRegistry::global().record_histogram(
      metric_name(algorithm, "residual"), residual);
}

void record_bracket_error(const char* algorithm) {
  MetricsRegistry::global().add_counter(
      metric_name(algorithm, "bracket_errors"));
}

void record_pole_diagnostics(const char* solver, double min_separation,
                             double vandermonde_cond) {
  auto& reg = MetricsRegistry::global();
  std::string base{solver};
  reg.record_histogram(base + ".min_pole_separation", min_separation);
  reg.record_histogram(base + ".vandermonde_cond", vandermonde_cond);
}

namespace detail {
void record_unconverged(const char* what, int iterations) {
  auto& reg = MetricsRegistry::global();
  reg.add_counter("solver.unconverged");
  reg.add_counter(std::string(what) + ".unconverged");
  reg.record_histogram("solver.unconverged.iterations",
                       static_cast<double>(iterations));
}
}  // namespace detail

#endif  // FPSQ_NO_METRICS

}  // namespace fpsq::obs
