#include "obs/timeline.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "obs/manifest.h"

namespace fpsq::obs {

TimelineSampler::~TimelineSampler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool TimelineSampler::start(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || finalized_ || !(options.interval_ms > 0.0)) {
    return false;
  }
  options_ = options;
  // Clamp tiny positive intervals: below kMinIntervalMs the sampler
  // would degenerate into a hot spin on the registry mutex.
  if (options_.interval_ms < kMinIntervalMs) {
    options_.interval_ms = kMinIntervalMs;
  }
  samples_.clear();
  started_at_ = std::chrono::steady_clock::now();
  stop_requested_ = false;
  running_ = true;
#ifndef FPSQ_NO_METRICS
  thread_ = std::thread([this] { sampling_loop(); });
#endif
  return true;
}

void TimelineSampler::sampling_loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.interval_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;  // final sample is appended by stop_and_write()
    }
    append_sample_locked();
  }
}

TimelineSampler::Sample TimelineSampler::take_sample_locked() const {
  // snapshot() takes the registry mutex, not ours; recording threads
  // stay lock-free throughout.
  Sample s;
  s.t_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_at_)
              .count();
  s.snapshot = MetricsRegistry::global().snapshot();
  return s;
}

void TimelineSampler::append_sample_locked() {
  samples_.push_back(take_sample_locked());
}

bool TimelineSampler::stop_and_write() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_) return true;
    if (!running_) return false;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::string body;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The forced final sample. When the run ended right on an interval
    // boundary the periodic loop just sampled; emitting both would put
    // two near-identical entries at the tail of the series, so a last
    // periodic sample younger than half an interval is replaced instead.
    Sample final_sample = take_sample_locked();
    const double half_interval_s = 0.5 * options_.interval_ms * 1e-3;
    if (!samples_.empty() &&
        final_sample.t_s - samples_.back().t_s < half_interval_s) {
      samples_.back() = std::move(final_sample);
    } else {
      samples_.push_back(std::move(final_sample));
    }
    running_ = false;
    finalized_ = true;
    body = to_json_locked_unsafe();
    path = options_.path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                      body.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

bool TimelineSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::size_t TimelineSampler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::string TimelineSampler::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return to_json_locked_unsafe();
}

std::string TimelineSampler::to_json_locked_unsafe() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"fpsq.timeline.v1\",\n  \"manifest\": ";
  out += RunManifest::current().to_json();
  out += ",\n  \"interval_ms\": ";
  json::number_to(out, options_.interval_ms);
  out += ",\n  \"samples\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"t_s\": ";
    json::number_to(out, s.t_s);
    out += ", \"counters\": {";
    for (std::size_t c = 0; c < s.snapshot.counters.size(); ++c) {
      if (c > 0) out += ", ";
      out += "\"";
      json::escape_to(out, s.snapshot.counters[c].name);
      out += "\": " + std::to_string(s.snapshot.counters[c].value);
    }
    out += "}, \"gauges\": {";
    for (std::size_t g = 0; g < s.snapshot.gauges.size(); ++g) {
      if (g > 0) out += ", ";
      const auto& gv = s.snapshot.gauges[g];
      out += "\"";
      json::escape_to(out, gv.name);
      out += "\": ";
      json::number_to(out, gv.ever_set ? gv.value : 0.0);
    }
    out += "}, \"histograms\": {";
    for (std::size_t h = 0; h < s.snapshot.histograms.size(); ++h) {
      if (h > 0) out += ", ";
      const auto& hv = s.snapshot.histograms[h];
      out += "\"";
      json::escape_to(out, hv.name);
      out += "\": {\"count\": " + std::to_string(hv.count);
      out += ", \"mean\": ";
      json::number_to(out, hv.mean());
      out += ", \"p50\": ";
      json::number_to(out, hv.quantile(0.50));
      out += ", \"p90\": ";
      json::number_to(out, hv.quantile(0.90));
      out += ", \"p99\": ";
      json::number_to(out, hv.quantile(0.99));
      out += ", \"min\": ";
      json::number_to(out, hv.count > 0 ? hv.min : 0.0);
      out += ", \"max\": ";
      json::number_to(out, hv.count > 0 ? hv.max : 0.0);
      out += "}";
    }
    out += "}}";
  }
  out += samples_.empty() ? "]" : "\n  ]";
  out += "\n}";
  return out;
}

TimelineSampler& TimelineSampler::global() {
  static TimelineSampler* g = new TimelineSampler();  // leaked, like the registry
  return *g;
}

}  // namespace fpsq::obs
