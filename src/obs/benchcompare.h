// fpsq::obs — bench-regression comparison engine behind the
// `fpsq benchdiff` subcommand: diffs two BENCH_*.json collections
// (schema v1 bare array or v2 object) metric by metric with
// noise-aware per-class thresholds.
//
// Metric classes:
//   * timing   — wall clocks, throughputs, speedups. Noisy by nature:
//     deltas beyond the loose relative tolerance WARN, never fail.
//   * accuracy — the reproduction numbers the paper's tables/figures
//     pin down. Deterministic (seeded sims + analytic solvers): deltas
//     beyond the tight tolerance FAIL.
//   * info     — environment facts (thread counts, cache tallies);
//     never compared.
// A bench present in the baseline but missing from the current run
// FAILS; a new bench or metric only warns (the baseline needs a
// refresh, the reproduction did not regress).
//
// Exit-code contract (used by CI):
//   0 clean · 3 timing/new-entry warnings only · 4 accuracy regression
// (the CLI reserves 1 for I/O or parse errors and 2 for usage errors).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace fpsq::obs {

enum class MetricClass { kTiming, kAccuracy, kInfo };

/// Classifies a metric key: `wall_s`, `*_s`, `*events_per_sec*` and
/// `*speedup*` are timing; `threads` and `cache_*` are info; everything
/// else is an accuracy metric.
[[nodiscard]] MetricClass classify_metric(std::string_view key);

[[nodiscard]] const char* metric_class_name(MetricClass c);

struct BenchDiffOptions {
  /// Relative tolerance for timing-class metrics (warn above).
  double timing_rel_tol = 0.5;
  /// Absolute slack added to the timing tolerance. Sub-millisecond
  /// benches routinely double their wall time under scheduler noise; a
  /// purely relative gate would flag them on every run.
  double timing_abs_tol = 0.01;
  /// Relative tolerance for accuracy-class metrics (fail above).
  double accuracy_rel_tol = 1e-6;
  /// Absolute floor for accuracy comparisons near zero.
  double accuracy_abs_tol = 1e-9;
};

struct BenchDiffFinding {
  enum class Severity { kWarn, kFail };
  std::string bench;
  std::string metric;  ///< empty for bench-level findings
  MetricClass cls = MetricClass::kAccuracy;
  Severity severity = Severity::kFail;
  bool has_values = false;
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;
  std::string note;
};

struct BenchDiffReport {
  std::vector<BenchDiffFinding> findings;  ///< non-clean rows only
  std::size_t benches_compared = 0;
  std::size_t metrics_compared = 0;
  std::size_t warnings = 0;
  std::size_t failures = 0;

  [[nodiscard]] bool failed() const { return failures > 0; }
  /// 0 = clean, 3 = warnings only, 4 = at least one failure.
  [[nodiscard]] int exit_code() const;
  /// "pass", "warn" or "fail".
  [[nodiscard]] const char* verdict() const;
  /// Human-readable markdown verdict (summary + findings table).
  [[nodiscard]] std::string to_markdown() const;
  /// Machine-readable verdict (schema fpsq.benchdiff.v1).
  [[nodiscard]] std::string to_json() const;
};

/// Diffs two parsed BENCH_*.json documents. Accepts the v1 schema (a
/// bare array of bench objects) and the v2 schema
/// (`{"schema":"fpsq.bench.v2","manifest":{...},"benches":[...]}`).
/// Throws std::runtime_error when a document has neither shape.
[[nodiscard]] BenchDiffReport diff_bench_collections(
    const json::Value& baseline, const json::Value& current,
    const BenchDiffOptions& options = {});

}  // namespace fpsq::obs
