// Umbrella header: everything a typical application needs.
//
//   #include "fpsq.h"
//
//   fpsq::core::AccessScenario scenario;
//   fpsq::core::RttModel model{scenario, 80.0};
//   double ping_ms = model.rtt_quantile_ms(1e-5);
#pragma once

#include "core/dimensioning.h"
#include "core/mixed_population.h"
#include "core/multi_server.h"
#include "core/playability.h"
#include "core/rtt_model.h"
#include "core/scenario.h"
#include "core/validation.h"
#include "dist/dist.h"
#include "queueing/bounds.h"
#include "queueing/chernoff.h"
#include "queueing/convolution.h"
#include "queueing/dek1.h"
#include "queueing/erlang_mix.h"
#include "queueing/giek1.h"
#include "queueing/lindley.h"
#include "queueing/mg1.h"
#include "queueing/mg1_erlang_service.h"
#include "queueing/ndd1.h"
#include "queueing/position_delay.h"
#include "sim/gaming_scenario.h"
#include "sim/trace_replay.h"
#include "stats/autocorrelation.h"
#include "stats/empirical.h"
#include "stats/moments.h"
#include "trace/analyzer.h"
#include "trace/pcap.h"
#include "trace/trace_io.h"
#include "traffic/game_profiles.h"
#include "traffic/synthetic.h"
