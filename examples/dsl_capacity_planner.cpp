// Capacity planner: how many gamers can a given gaming share support
// under an RTT bound? Sweeps the burstiness assumption K, since the paper
// shows it dominates the answer.
//
//   $ ./dsl_capacity_planner [bound_ms] [C_mbps] [tick_ms] [PS_bytes]
#include <cstdio>
#include <cstdlib>

#include "core/dimensioning.h"

int main(int argc, char** argv) {
  using namespace fpsq::core;

  const double bound_ms = argc > 1 ? std::atof(argv[1]) : 50.0;
  const double c_mbps = argc > 2 ? std::atof(argv[2]) : 5.0;
  const double tick_ms = argc > 3 ? std::atof(argv[3]) : 40.0;
  const double ps = argc > 4 ? std::atof(argv[4]) : 125.0;
  if (!(bound_ms > 0) || !(c_mbps > 0) || !(tick_ms > 0) || !(ps > 0)) {
    std::fprintf(stderr, "all arguments must be positive\n");
    return 1;
  }

  AccessScenario s;
  s.bottleneck_bps = c_mbps * 1e6;
  s.tick_ms = tick_ms;
  s.server_packet_bytes = ps;

  std::printf("Capacity plan: RTT(99.999%%) <= %.0f ms on C = %.1f Mb/s, "
              "T = %.0f ms, P_S = %.0f B\n\n",
              bound_ms, c_mbps, tick_ms, ps);
  std::printf("%6s %12s %10s %16s\n", "K", "max load", "max gamers",
              "RTT at max [ms]");
  for (int k : {2, 5, 9, 15, 20, 30}) {
    s.erlang_k = k;
    const auto d = dimension_for_rtt(s, bound_ms, 1e-5);
    std::printf("%6d %11.1f%% %10d %16.1f\n", k, 100.0 * d.rho_max,
                d.n_max_int, d.rtt_at_max_ms);
  }
  std::printf(
      "\nK is the Erlang order of the server burst-size law: larger K ="
      "\nmore regular bursts. The paper urges measuring it carefully —"
      "\nthe admissible population triples between K = 2 and K = 20.\n");
  return 0;
}
