// Game traffic explorer: generates a synthetic session for each built-in
// game profile (Counter-Strike, Half-Life, Quake3, Halo, Unreal
// Tournament), re-measures it with the Section-2.2 analyzer, and prints a
// survey table like the paper's Section 2. Optionally dumps one trace to
// CSV for external tooling.
//
//   $ ./game_traffic_explorer [players] [csv_path]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/analyzer.h"
#include "trace/trace_io.h"
#include "traffic/game_profiles.h"
#include "traffic/synthetic.h"

int main(int argc, char** argv) {
  using namespace fpsq;

  const int players = argc > 1 ? std::atoi(argv[1]) : 12;
  if (players < 1 || players > 64) {
    std::fprintf(stderr, "players must be in [1, 64]\n");
    return 1;
  }

  std::printf("Synthetic %d-player sessions, 120 s each\n\n", players);
  std::printf("%-22s | %9s %7s | %9s %7s | %9s %7s | %8s\n", "game",
              "srv pkt B", "CoV", "burst ms", "CoV", "cli pkt B", "CoV",
              "cli IAT");

  const std::vector<traffic::GameProfile> profiles = {
      traffic::counter_strike(), traffic::half_life(),
      traffic::quake3(players), traffic::halo(players),
      traffic::unreal_tournament(players)};

  for (const auto& profile : profiles) {
    traffic::SyntheticTraceOptions opt;
    opt.clients = players;
    opt.duration_s = 120.0;
    opt.seed = 0xc0ffee;
    const auto t = traffic::generate_trace(profile, opt);
    trace::AnalyzerOptions a;
    a.grouping = trace::BurstGrouping::kByGapThreshold;
    a.gap_threshold_s = 8e-3;
    const auto c = trace::analyze(t, a);
    std::printf("%-22s | %9.1f %7.3f | %9.1f %7.3f | %9.1f %7.3f | %7.1f\n",
                profile.name.c_str(), c.server_packet_size_bytes.mean(),
                c.server_packet_size_bytes.cov(), c.burst_iat_ms.mean(),
                c.burst_iat_ms.cov(), c.client_packet_size_bytes.mean(),
                c.client_packet_size_bytes.cov(), c.client_iat_ms.mean());
  }

  std::printf("\ncitations:\n");
  for (const auto& profile : profiles) {
    std::printf("  %-22s %s\n", profile.name.c_str(),
                profile.citation.c_str());
  }

  if (argc > 2) {
    const std::string path = argv[2];
    traffic::SyntheticTraceOptions opt;
    opt.clients = players;
    opt.duration_s = 60.0;
    const auto t =
        traffic::generate_trace(traffic::unreal_tournament(players), opt);
    trace::write_csv_file(path, t);
    std::printf("\nwrote a 60 s Unreal Tournament trace to %s (%zu "
                "packets)\n",
                path.c_str(), t.size());
  }
  return 0;
}
