// Model vs simulation: runs the analytic RTT model and the packet-level
// discrete-event simulation on the same scenario and prints the delay
// quantiles side by side — the empirical check the paper leaves to
// limiting arguments.
//
//   $ ./model_vs_sim [erlang_k] [duration_s]
#include <cstdio>
#include <cstdlib>

#include "core/validation.h"

int main(int argc, char** argv) {
  using namespace fpsq::core;

  const int k = argc > 1 ? std::atoi(argv[1]) : 9;
  const double duration = argc > 2 ? std::atof(argv[2]) : 240.0;
  if (k < 2 || !(duration > 10.0)) {
    std::fprintf(stderr, "need erlang_k >= 2 and duration > 10 s\n");
    return 1;
  }

  AccessScenario s;
  s.server_packet_bytes = 125.0;
  s.tick_ms = 60.0;
  s.erlang_k = k;

  ValidationOptions opt;
  opt.quantile_prob = 0.999;
  opt.duration_s = duration;

  std::printf("Analytic model vs discrete-event simulation "
              "(K = %d, 99.9%% quantiles, %.0f s simulated)\n\n",
              k, duration);
  std::printf("%6s %5s | %19s | %21s | %19s\n", "load", "N",
              "upstream wait [ms]", "downstream delay [ms]",
              "model-RTT [ms]");
  std::printf("%6s %5s | %9s %9s | %10s %10s | %9s %9s\n", "", "",
              "model", "sim", "model", "sim", "model", "sim");
  for (double rho : {0.2, 0.4, 0.6, 0.8}) {
    const auto p = validate_point(
        s,
        static_cast<int>(s.clients_for_downlink_load(rho)), opt);
    std::printf("%5.0f%% %5d | %9.3f %9.3f | %10.2f %10.2f | %9.2f %9.2f\n",
                100.0 * p.rho_down, p.n_clients, p.model_up_ms,
                p.sim_up_ms, p.model_down_ms, p.sim_down_ms,
                p.model_rtt_ms, p.sim_rtt_ms);
  }
  return 0;
}
