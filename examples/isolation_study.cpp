// Isolation study: the paper's Section-1 premise is that with WFQ or
// head-of-line priority scheduling, gaming traffic can be analyzed in
// isolation from elastic (TCP-like) traffic. This example injects heavy
// elastic cross traffic into the bottleneck and compares the gaming delay
// under FIFO, priority and WFQ against a clean (no cross traffic) run.
//
//   $ ./isolation_study [cross_load]
#include <cstdio>
#include <cstdlib>

#include "sim/gaming_scenario.h"

int main(int argc, char** argv) {
  using namespace fpsq::sim;

  const double cross = argc > 1 ? std::atof(argv[1]) : 0.5;
  if (cross < 0.0 || cross >= 1.0) {
    std::fprintf(stderr, "cross_load must be in [0, 1)\n");
    return 1;
  }

  GamingScenarioConfig base;
  base.n_clients = 40;
  base.tick_ms = 40.0;
  base.erlang_k = 9;
  base.duration_s = 120.0;
  base.warmup_s = 5.0;
  base.seed = 99;

  auto run = [&](GamingScenarioConfig::Scheduler sched, double load) {
    GamingScenarioConfig cfg = base;
    cfg.scheduler = sched;
    cfg.cross_load = load;
    return run_gaming_scenario(cfg);
  };

  std::printf("Gaming delay under %.0f%% elastic cross traffic "
              "(40 gamers, rho_down = %.0f%%)\n\n",
              100.0 * cross, 100.0 * downlink_load(base));
  std::printf("%-22s %16s %16s %18s\n", "scheduler",
              "up wait mean [ms]", "up wait p99 [ms]",
              "down delay p99 [ms]");

  const auto clean = run(GamingScenarioConfig::Scheduler::kFifo, 0.0);
  auto report = [](const char* name, const GamingScenarioResult& r) {
    std::printf("%-22s %16.3f %16.3f %18.3f\n", name,
                r.upstream_wait.moments().mean() * 1e3,
                r.upstream_wait.exact_quantile(0.99) * 1e3,
                r.downstream_delay.exact_quantile(0.99) * 1e3);
  };
  report("(no cross traffic)", clean);
  report("FIFO", run(GamingScenarioConfig::Scheduler::kFifo, cross));
  report("HoL priority",
         run(GamingScenarioConfig::Scheduler::kHolPriority, cross));
  report("WFQ (50% share)",
         run(GamingScenarioConfig::Scheduler::kWfq, cross));

  std::printf(
      "\nUpstream (smooth per-packet traffic): priority and WFQ keep the"
      "\ngaming wait within a residual service time of the clean run"
      "\n(<= one 1500 B elastic packet at C = %.1f ms) — the paper's"
      "\njustification for analyzing the real-time queue in isolation."
      "\nFIFO offers no such protection."
      "\n"
      "\nDownstream (bursty traffic): priority still isolates fully, but"
      "\nWFQ only guarantees its configured *share* — a server burst"
      "\ndrains at share*C while the elastic queue is busy, so the share"
      "\nmust be provisioned for burst drain, not just for mean load"
      "\n(cf. the paper's remark that under WFQ the actual capacity can"
      "\nbe higher when other classes idle).\n",
      8.0 * base.cross_packet_bytes / base.bottleneck_bps * 1e3);
  return 0;
}
