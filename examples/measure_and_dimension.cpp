// End-to-end workflow the paper recommends in its conclusions: measure
// the burst-size law from a packet trace ("it would pay off to more
// accurately determine the Erlang order by tracing packets in real-life
// FPS games"), then dimension the aggregation link with the fitted K.
//
//   $ ./measure_and_dimension [trace.csv] [rtt_bound_ms]
//
// Without a trace argument, a synthetic Unreal Tournament session is
// generated first (and analyzed exactly as a real capture would be).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dimensioning.h"
#include "dist/fitting.h"
#include "trace/analyzer.h"
#include "trace/trace_io.h"
#include "traffic/game_profiles.h"
#include "traffic/synthetic.h"

int main(int argc, char** argv) {
  using namespace fpsq;

  const double bound_ms = argc > 2 ? std::atof(argv[2]) : 50.0;
  if (!(bound_ms > 0.0)) {
    std::fprintf(stderr, "rtt_bound_ms must be positive\n");
    return 1;
  }

  // 1. Obtain a trace.
  trace::Trace t;
  if (argc > 1) {
    t = trace::read_csv_file(argv[1]);
    std::printf("loaded %zu packets from %s\n", t.size(), argv[1]);
  } else {
    traffic::SyntheticTraceOptions opt;
    opt.clients = 12;
    opt.duration_s = 1800.0;
    const auto profile = traffic::unreal_tournament(12);
    t = traffic::generate_trace(profile, opt);
    std::printf("generated a synthetic 12-player UT2003 session "
                "(%zu packets, 30 min)\n",
                t.size());
  }

  // 2. Measure the Section-2.2 characteristics.
  trace::AnalyzerOptions a;
  a.grouping = trace::BurstGrouping::kByGapThreshold;
  a.gap_threshold_s = 8e-3;
  const auto c = trace::analyze(t, a);
  if (c.bursts.size() < 100 || c.client_iat_ms.count() < 100) {
    std::fprintf(stderr, "trace too short to fit a burst-size law\n");
    return 1;
  }
  const double mean_burst = c.burst_size_bytes.mean();
  std::printf("\nmeasured: burst mean %.0f B, CoV %.3f; tick %.1f ms; "
              "client %.0f B every %.1f ms\n",
              mean_burst, c.burst_size_bytes.cov(), c.burst_iat_ms.mean(),
              c.client_packet_size_bytes.mean(), c.client_iat_ms.mean());

  // 3. Fit K both ways (the paper's Figure-1 lesson: prefer the tail).
  const auto tdf = trace::burst_size_tdf(c.bursts, 2.5 * mean_burst, 100);
  const auto tail_fit = dist::erlang_fit_tail(mean_burst, tdf, 2, 64, 1e-4);
  const auto moment_fit =
      dist::erlang_fit_moments(mean_burst, c.burst_size_bytes.cov());
  std::printf("fitted Erlang order: K = %d (tail fit)   vs   K = %d "
              "(CoV fit)\n",
              tail_fit.k, moment_fit.k());

  // 4. Dimension with each fit.
  core::AccessScenario s;
  s.tick_ms = c.burst_iat_ms.mean();
  s.client_packet_bytes = c.client_packet_size_bytes.mean();
  s.server_packet_bytes = mean_burst / c.burst_packet_count.mean();
  std::printf("\ndimensioning a %.1f Mb/s gaming share for RTT(99.999%%)"
              " <= %.0f ms:\n",
              s.bottleneck_bps / 1e6, bound_ms);
  for (const auto& [label, k] :
       {std::pair<const char*, int>{"tail-fit K", tail_fit.k},
        std::pair<const char*, int>{"CoV-fit  K", moment_fit.k()}}) {
    s.erlang_k = std::max(2, k);
    const auto d = core::dimension_for_rtt(s, bound_ms, 1e-5);
    std::printf("  %s = %2d: max load %.1f%%, max gamers %d\n", label,
                s.erlang_k, 100.0 * d.rho_max, d.n_max_int);
  }
  std::printf(
      "\nThe spread between the two rows is the capacity you misplan by"
      "\nfitting central moments instead of the tail (Section 2.3.2).\n");
  return 0;
}
