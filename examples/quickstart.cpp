// Quickstart: compute the 99.999% ping-time quantile for a DSL gaming
// scenario and see where the milliseconds go.
//
//   $ ./quickstart [n_gamers]
//
// Models the paper's default setup: 128 kb/s uplinks, 1 Mb/s downlinks,
// a 5 Mb/s gaming share on the aggregation trunk, 80 B client packets,
// 125 B (mean) server packets per client, a 40 ms tick, and Erlang-9
// burst sizes.
#include <cstdio>
#include <cstdlib>

#include "core/rtt_model.h"

int main(int argc, char** argv) {
  using namespace fpsq::core;

  AccessScenario scenario;  // paper Section-4 defaults
  scenario.erlang_k = 9;

  double gamers = 60.0;
  if (argc > 1) {
    gamers = std::atof(argv[1]);
    if (!(gamers > 0.0) || gamers >= scenario.max_stable_clients()) {
      std::fprintf(stderr,
                   "n_gamers must be in (0, %.0f) for this scenario\n",
                   scenario.max_stable_clients());
      return 1;
    }
  }

  const RttModel model{scenario, gamers};
  const auto b = model.breakdown_ms(1e-5);

  std::printf("FPS ping model — %.0f gamers on a %.1f Mb/s gaming "
              "share\n\n",
              gamers, scenario.bottleneck_bps / 1e6);
  std::printf("  downlink load                 %6.1f %%\n",
              100.0 * model.rho_down());
  std::printf("  uplink load                   %6.1f %%\n",
              100.0 * model.rho_up());
  std::printf("  mean RTT                      %6.2f ms\n",
              model.rtt_mean_ms());
  std::printf("  99.999%% RTT quantile          %6.2f ms\n\n",
              b.total_ms);
  std::printf("  breakdown (99.999%% quantiles of each part alone):\n");
  std::printf("    serialization/propagation   %6.2f ms\n",
              b.deterministic_ms);
  std::printf("    upstream queueing (M/D/1)   %6.2f ms\n",
              b.upstream_ms);
  std::printf("    burst wait (D/E_K/1)        %6.2f ms\n", b.burst_ms);
  std::printf("    position within burst       %6.2f ms\n",
              b.position_ms);
  std::printf("\n  verdict: %s for competitive play (50 ms bound)\n",
              b.total_ms <= 50.0 ? "OK" : "NOT acceptable");
  return 0;
}
