# Empty compiler generated dependencies file for test_sim_jitter.
# This may be replaced when dependencies are built.
