file(REMOVE_RECURSE
  "CMakeFiles/test_sim_jitter.dir/test_sim_jitter.cpp.o"
  "CMakeFiles/test_sim_jitter.dir/test_sim_jitter.cpp.o.d"
  "test_sim_jitter"
  "test_sim_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
