# Empty compiler generated dependencies file for test_core_playability.
# This may be replaced when dependencies are built.
