file(REMOVE_RECURSE
  "CMakeFiles/test_core_playability.dir/test_core_playability.cpp.o"
  "CMakeFiles/test_core_playability.dir/test_core_playability.cpp.o.d"
  "test_core_playability"
  "test_core_playability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_playability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
