file(REMOVE_RECURSE
  "CMakeFiles/test_trace_pcap.dir/test_trace_pcap.cpp.o"
  "CMakeFiles/test_trace_pcap.dir/test_trace_pcap.cpp.o.d"
  "test_trace_pcap"
  "test_trace_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
