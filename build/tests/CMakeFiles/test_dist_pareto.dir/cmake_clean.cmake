file(REMOVE_RECURSE
  "CMakeFiles/test_dist_pareto.dir/test_dist_pareto.cpp.o"
  "CMakeFiles/test_dist_pareto.dir/test_dist_pareto.cpp.o.d"
  "test_dist_pareto"
  "test_dist_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
