file(REMOVE_RECURSE
  "CMakeFiles/test_math_laplace.dir/test_math_laplace.cpp.o"
  "CMakeFiles/test_math_laplace.dir/test_math_laplace.cpp.o.d"
  "test_math_laplace"
  "test_math_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
