# Empty compiler generated dependencies file for test_math_linalg.
# This may be replaced when dependencies are built.
