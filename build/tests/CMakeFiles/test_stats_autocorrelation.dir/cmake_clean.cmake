file(REMOVE_RECURSE
  "CMakeFiles/test_stats_autocorrelation.dir/test_stats_autocorrelation.cpp.o"
  "CMakeFiles/test_stats_autocorrelation.dir/test_stats_autocorrelation.cpp.o.d"
  "test_stats_autocorrelation"
  "test_stats_autocorrelation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_autocorrelation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
