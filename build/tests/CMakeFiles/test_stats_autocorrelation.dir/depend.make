# Empty dependencies file for test_stats_autocorrelation.
# This may be replaced when dependencies are built.
