file(REMOVE_RECURSE
  "CMakeFiles/test_core_multi_server.dir/test_core_multi_server.cpp.o"
  "CMakeFiles/test_core_multi_server.dir/test_core_multi_server.cpp.o.d"
  "test_core_multi_server"
  "test_core_multi_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multi_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
