# Empty dependencies file for test_core_multi_server.
# This may be replaced when dependencies are built.
