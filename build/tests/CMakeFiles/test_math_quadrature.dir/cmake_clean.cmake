file(REMOVE_RECURSE
  "CMakeFiles/test_math_quadrature.dir/test_math_quadrature.cpp.o"
  "CMakeFiles/test_math_quadrature.dir/test_math_quadrature.cpp.o.d"
  "test_math_quadrature"
  "test_math_quadrature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
