# Empty dependencies file for test_math_quadrature.
# This may be replaced when dependencies are built.
