file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_convolution.dir/test_queueing_convolution.cpp.o"
  "CMakeFiles/test_queueing_convolution.dir/test_queueing_convolution.cpp.o.d"
  "test_queueing_convolution"
  "test_queueing_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
