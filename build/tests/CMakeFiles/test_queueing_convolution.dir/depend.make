# Empty dependencies file for test_queueing_convolution.
# This may be replaced when dependencies are built.
