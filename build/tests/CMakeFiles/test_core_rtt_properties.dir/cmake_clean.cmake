file(REMOVE_RECURSE
  "CMakeFiles/test_core_rtt_properties.dir/test_core_rtt_properties.cpp.o"
  "CMakeFiles/test_core_rtt_properties.dir/test_core_rtt_properties.cpp.o.d"
  "test_core_rtt_properties"
  "test_core_rtt_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rtt_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
