# Empty dependencies file for test_sim_trace_replay.
# This may be replaced when dependencies are built.
