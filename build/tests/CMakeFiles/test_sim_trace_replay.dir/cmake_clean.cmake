file(REMOVE_RECURSE
  "CMakeFiles/test_sim_trace_replay.dir/test_sim_trace_replay.cpp.o"
  "CMakeFiles/test_sim_trace_replay.dir/test_sim_trace_replay.cpp.o.d"
  "test_sim_trace_replay"
  "test_sim_trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
