# Empty dependencies file for test_queueing_bounds.
# This may be replaced when dependencies are built.
