file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_bounds.dir/test_queueing_bounds.cpp.o"
  "CMakeFiles/test_queueing_bounds.dir/test_queueing_bounds.cpp.o.d"
  "test_queueing_bounds"
  "test_queueing_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
