file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_giek1.dir/test_queueing_giek1.cpp.o"
  "CMakeFiles/test_queueing_giek1.dir/test_queueing_giek1.cpp.o.d"
  "test_queueing_giek1"
  "test_queueing_giek1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_giek1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
