# Empty dependencies file for test_queueing_giek1.
# This may be replaced when dependencies are built.
