file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_roundtrips.dir/test_fuzz_roundtrips.cpp.o"
  "CMakeFiles/test_fuzz_roundtrips.dir/test_fuzz_roundtrips.cpp.o.d"
  "test_fuzz_roundtrips"
  "test_fuzz_roundtrips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_roundtrips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
