# Empty dependencies file for test_queueing_mg1.
# This may be replaced when dependencies are built.
