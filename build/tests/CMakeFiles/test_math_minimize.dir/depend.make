# Empty dependencies file for test_math_minimize.
# This may be replaced when dependencies are built.
