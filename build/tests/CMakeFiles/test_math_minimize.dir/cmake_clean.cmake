file(REMOVE_RECURSE
  "CMakeFiles/test_math_minimize.dir/test_math_minimize.cpp.o"
  "CMakeFiles/test_math_minimize.dir/test_math_minimize.cpp.o.d"
  "test_math_minimize"
  "test_math_minimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
