file(REMOVE_RECURSE
  "CMakeFiles/test_sim_queue_theory.dir/test_sim_queue_theory.cpp.o"
  "CMakeFiles/test_sim_queue_theory.dir/test_sim_queue_theory.cpp.o.d"
  "test_sim_queue_theory"
  "test_sim_queue_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_queue_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
