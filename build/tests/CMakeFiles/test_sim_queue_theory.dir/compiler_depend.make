# Empty compiler generated dependencies file for test_sim_queue_theory.
# This may be replaced when dependencies are built.
