# Empty compiler generated dependencies file for test_math_special.
# This may be replaced when dependencies are built.
