file(REMOVE_RECURSE
  "CMakeFiles/test_math_special.dir/test_math_special.cpp.o"
  "CMakeFiles/test_math_special.dir/test_math_special.cpp.o.d"
  "test_math_special"
  "test_math_special.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_special.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
