file(REMOVE_RECURSE
  "CMakeFiles/test_math_fixed_point.dir/test_math_fixed_point.cpp.o"
  "CMakeFiles/test_math_fixed_point.dir/test_math_fixed_point.cpp.o.d"
  "test_math_fixed_point"
  "test_math_fixed_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_fixed_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
