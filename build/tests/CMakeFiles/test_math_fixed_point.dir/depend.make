# Empty dependencies file for test_math_fixed_point.
# This may be replaced when dependencies are built.
