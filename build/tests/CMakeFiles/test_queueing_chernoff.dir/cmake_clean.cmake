file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_chernoff.dir/test_queueing_chernoff.cpp.o"
  "CMakeFiles/test_queueing_chernoff.dir/test_queueing_chernoff.cpp.o.d"
  "test_queueing_chernoff"
  "test_queueing_chernoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_chernoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
