# Empty compiler generated dependencies file for test_queueing_chernoff.
# This may be replaced when dependencies are built.
