file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_position.dir/test_queueing_position.cpp.o"
  "CMakeFiles/test_queueing_position.dir/test_queueing_position.cpp.o.d"
  "test_queueing_position"
  "test_queueing_position.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
