# Empty compiler generated dependencies file for test_queueing_position.
# This may be replaced when dependencies are built.
