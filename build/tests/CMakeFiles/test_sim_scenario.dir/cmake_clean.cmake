file(REMOVE_RECURSE
  "CMakeFiles/test_sim_scenario.dir/test_sim_scenario.cpp.o"
  "CMakeFiles/test_sim_scenario.dir/test_sim_scenario.cpp.o.d"
  "test_sim_scenario"
  "test_sim_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
