# Empty compiler generated dependencies file for test_sim_scenario.
# This may be replaced when dependencies are built.
