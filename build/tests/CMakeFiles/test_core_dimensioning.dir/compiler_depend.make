# Empty compiler generated dependencies file for test_core_dimensioning.
# This may be replaced when dependencies are built.
