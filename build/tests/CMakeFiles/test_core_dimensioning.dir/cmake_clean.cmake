file(REMOVE_RECURSE
  "CMakeFiles/test_core_dimensioning.dir/test_core_dimensioning.cpp.o"
  "CMakeFiles/test_core_dimensioning.dir/test_core_dimensioning.cpp.o.d"
  "test_core_dimensioning"
  "test_core_dimensioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
