file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_erlang_mix.dir/test_queueing_erlang_mix.cpp.o"
  "CMakeFiles/test_queueing_erlang_mix.dir/test_queueing_erlang_mix.cpp.o.d"
  "test_queueing_erlang_mix"
  "test_queueing_erlang_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_erlang_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
