# Empty dependencies file for test_queueing_erlang_mix.
# This may be replaced when dependencies are built.
