file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_ndd1.dir/test_queueing_ndd1.cpp.o"
  "CMakeFiles/test_queueing_ndd1.dir/test_queueing_ndd1.cpp.o.d"
  "test_queueing_ndd1"
  "test_queueing_ndd1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_ndd1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
