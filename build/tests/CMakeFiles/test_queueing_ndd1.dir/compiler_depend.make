# Empty compiler generated dependencies file for test_queueing_ndd1.
# This may be replaced when dependencies are built.
