# Empty compiler generated dependencies file for test_queueing_md1_queue_length.
# This may be replaced when dependencies are built.
