file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_md1_queue_length.dir/test_queueing_md1_queue_length.cpp.o"
  "CMakeFiles/test_queueing_md1_queue_length.dir/test_queueing_md1_queue_length.cpp.o.d"
  "test_queueing_md1_queue_length"
  "test_queueing_md1_queue_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_md1_queue_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
