file(REMOVE_RECURSE
  "CMakeFiles/test_dist_fitting.dir/test_dist_fitting.cpp.o"
  "CMakeFiles/test_dist_fitting.dir/test_dist_fitting.cpp.o.d"
  "test_dist_fitting"
  "test_dist_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
