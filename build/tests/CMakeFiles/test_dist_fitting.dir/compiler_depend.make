# Empty compiler generated dependencies file for test_dist_fitting.
# This may be replaced when dependencies are built.
