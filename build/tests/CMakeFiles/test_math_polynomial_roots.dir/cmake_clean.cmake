file(REMOVE_RECURSE
  "CMakeFiles/test_math_polynomial_roots.dir/test_math_polynomial_roots.cpp.o"
  "CMakeFiles/test_math_polynomial_roots.dir/test_math_polynomial_roots.cpp.o.d"
  "test_math_polynomial_roots"
  "test_math_polynomial_roots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_polynomial_roots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
