# Empty compiler generated dependencies file for test_math_polynomial_roots.
# This may be replaced when dependencies are built.
