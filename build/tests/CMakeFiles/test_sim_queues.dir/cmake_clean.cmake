file(REMOVE_RECURSE
  "CMakeFiles/test_sim_queues.dir/test_sim_queues.cpp.o"
  "CMakeFiles/test_sim_queues.dir/test_sim_queues.cpp.o.d"
  "test_sim_queues"
  "test_sim_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
