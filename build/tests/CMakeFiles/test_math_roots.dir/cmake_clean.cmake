file(REMOVE_RECURSE
  "CMakeFiles/test_math_roots.dir/test_math_roots.cpp.o"
  "CMakeFiles/test_math_roots.dir/test_math_roots.cpp.o.d"
  "test_math_roots"
  "test_math_roots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_roots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
