# Empty dependencies file for test_math_roots.
# This may be replaced when dependencies are built.
