# Empty dependencies file for test_core_mixed_population.
# This may be replaced when dependencies are built.
