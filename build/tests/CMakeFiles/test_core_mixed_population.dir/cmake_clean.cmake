file(REMOVE_RECURSE
  "CMakeFiles/test_core_mixed_population.dir/test_core_mixed_population.cpp.o"
  "CMakeFiles/test_core_mixed_population.dir/test_core_mixed_population.cpp.o.d"
  "test_core_mixed_population"
  "test_core_mixed_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_mixed_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
