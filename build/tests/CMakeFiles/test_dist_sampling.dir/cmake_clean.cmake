file(REMOVE_RECURSE
  "CMakeFiles/test_dist_sampling.dir/test_dist_sampling.cpp.o"
  "CMakeFiles/test_dist_sampling.dir/test_dist_sampling.cpp.o.d"
  "test_dist_sampling"
  "test_dist_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
