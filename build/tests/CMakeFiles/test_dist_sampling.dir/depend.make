# Empty dependencies file for test_dist_sampling.
# This may be replaced when dependencies are built.
