file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_lindley.dir/test_queueing_lindley.cpp.o"
  "CMakeFiles/test_queueing_lindley.dir/test_queueing_lindley.cpp.o.d"
  "test_queueing_lindley"
  "test_queueing_lindley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_lindley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
