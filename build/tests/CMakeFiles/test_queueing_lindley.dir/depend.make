# Empty dependencies file for test_queueing_lindley.
# This may be replaced when dependencies are built.
