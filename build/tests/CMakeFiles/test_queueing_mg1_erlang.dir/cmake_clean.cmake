file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_mg1_erlang.dir/test_queueing_mg1_erlang.cpp.o"
  "CMakeFiles/test_queueing_mg1_erlang.dir/test_queueing_mg1_erlang.cpp.o.d"
  "test_queueing_mg1_erlang"
  "test_queueing_mg1_erlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_mg1_erlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
