# Empty compiler generated dependencies file for test_queueing_mg1_erlang.
# This may be replaced when dependencies are built.
