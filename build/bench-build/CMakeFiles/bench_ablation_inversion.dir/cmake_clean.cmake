file(REMOVE_RECURSE
  "../bench/bench_ablation_inversion"
  "../bench/bench_ablation_inversion.pdb"
  "CMakeFiles/bench_ablation_inversion.dir/bench_ablation_inversion.cpp.o"
  "CMakeFiles/bench_ablation_inversion.dir/bench_ablation_inversion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
