# Empty compiler generated dependencies file for bench_ablation_inversion.
# This may be replaced when dependencies are built.
