file(REMOVE_RECURSE
  "../bench/bench_table3_unreal"
  "../bench/bench_table3_unreal.pdb"
  "CMakeFiles/bench_table3_unreal.dir/bench_table3_unreal.cpp.o"
  "CMakeFiles/bench_table3_unreal.dir/bench_table3_unreal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_unreal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
