file(REMOVE_RECURSE
  "../bench/bench_table1_counterstrike"
  "../bench/bench_table1_counterstrike.pdb"
  "CMakeFiles/bench_table1_counterstrike.dir/bench_table1_counterstrike.cpp.o"
  "CMakeFiles/bench_table1_counterstrike.dir/bench_table1_counterstrike.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_counterstrike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
