# Empty dependencies file for bench_table1_counterstrike.
# This may be replaced when dependencies are built.
