file(REMOVE_RECURSE
  "../bench/bench_table4_dimensioning"
  "../bench/bench_table4_dimensioning.pdb"
  "CMakeFiles/bench_table4_dimensioning.dir/bench_table4_dimensioning.cpp.o"
  "CMakeFiles/bench_table4_dimensioning.dir/bench_table4_dimensioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
