# Empty dependencies file for bench_table4_dimensioning.
# This may be replaced when dependencies are built.
