file(REMOVE_RECURSE
  "../bench/bench_sensitivity_ps"
  "../bench/bench_sensitivity_ps.pdb"
  "CMakeFiles/bench_sensitivity_ps.dir/bench_sensitivity_ps.cpp.o"
  "CMakeFiles/bench_sensitivity_ps.dir/bench_sensitivity_ps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
