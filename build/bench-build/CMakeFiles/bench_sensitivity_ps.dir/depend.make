# Empty dependencies file for bench_sensitivity_ps.
# This may be replaced when dependencies are built.
