file(REMOVE_RECURSE
  "../bench/bench_sensitivity_capacity"
  "../bench/bench_sensitivity_capacity.pdb"
  "CMakeFiles/bench_sensitivity_capacity.dir/bench_sensitivity_capacity.cpp.o"
  "CMakeFiles/bench_sensitivity_capacity.dir/bench_sensitivity_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
