# Empty compiler generated dependencies file for bench_sensitivity_capacity.
# This may be replaced when dependencies are built.
