file(REMOVE_RECURSE
  "../bench/bench_figure1_burst_tdf"
  "../bench/bench_figure1_burst_tdf.pdb"
  "CMakeFiles/bench_figure1_burst_tdf.dir/bench_figure1_burst_tdf.cpp.o"
  "CMakeFiles/bench_figure1_burst_tdf.dir/bench_figure1_burst_tdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_burst_tdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
