# Empty dependencies file for bench_figure1_burst_tdf.
# This may be replaced when dependencies are built.
