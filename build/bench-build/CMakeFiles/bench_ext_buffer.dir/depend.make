# Empty dependencies file for bench_ext_buffer.
# This may be replaced when dependencies are built.
