file(REMOVE_RECURSE
  "../bench/bench_ext_buffer"
  "../bench/bench_ext_buffer.pdb"
  "CMakeFiles/bench_ext_buffer.dir/bench_ext_buffer.cpp.o"
  "CMakeFiles/bench_ext_buffer.dir/bench_ext_buffer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
