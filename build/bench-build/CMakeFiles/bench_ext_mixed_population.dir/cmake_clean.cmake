file(REMOVE_RECURSE
  "../bench/bench_ext_mixed_population"
  "../bench/bench_ext_mixed_population.pdb"
  "CMakeFiles/bench_ext_mixed_population.dir/bench_ext_mixed_population.cpp.o"
  "CMakeFiles/bench_ext_mixed_population.dir/bench_ext_mixed_population.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mixed_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
