# Empty compiler generated dependencies file for bench_ext_mixed_population.
# This may be replaced when dependencies are built.
