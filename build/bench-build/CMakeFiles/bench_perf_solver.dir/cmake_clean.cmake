file(REMOVE_RECURSE
  "../bench/bench_perf_solver"
  "../bench/bench_perf_solver.pdb"
  "CMakeFiles/bench_perf_solver.dir/bench_perf_solver.cpp.o"
  "CMakeFiles/bench_perf_solver.dir/bench_perf_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
