# Empty compiler generated dependencies file for bench_ablation_poisson_limit.
# This may be replaced when dependencies are built.
