file(REMOVE_RECURSE
  "../bench/bench_ext_games"
  "../bench/bench_ext_games.pdb"
  "CMakeFiles/bench_ext_games.dir/bench_ext_games.cpp.o"
  "CMakeFiles/bench_ext_games.dir/bench_ext_games.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
