# Empty compiler generated dependencies file for bench_ext_games.
# This may be replaced when dependencies are built.
