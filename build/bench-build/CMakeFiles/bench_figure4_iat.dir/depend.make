# Empty dependencies file for bench_figure4_iat.
# This may be replaced when dependencies are built.
