file(REMOVE_RECURSE
  "../bench/bench_figure4_iat"
  "../bench/bench_figure4_iat.pdb"
  "CMakeFiles/bench_figure4_iat.dir/bench_figure4_iat.cpp.o"
  "CMakeFiles/bench_figure4_iat.dir/bench_figure4_iat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_iat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
