file(REMOVE_RECURSE
  "../bench/bench_ext_jitter"
  "../bench/bench_ext_jitter.pdb"
  "CMakeFiles/bench_ext_jitter.dir/bench_ext_jitter.cpp.o"
  "CMakeFiles/bench_ext_jitter.dir/bench_ext_jitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
