file(REMOVE_RECURSE
  "../bench/bench_model_vs_sim"
  "../bench/bench_model_vs_sim.pdb"
  "CMakeFiles/bench_model_vs_sim.dir/bench_model_vs_sim.cpp.o"
  "CMakeFiles/bench_model_vs_sim.dir/bench_model_vs_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
