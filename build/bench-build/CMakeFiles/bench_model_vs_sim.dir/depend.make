# Empty dependencies file for bench_model_vs_sim.
# This may be replaced when dependencies are built.
