file(REMOVE_RECURSE
  "../bench/bench_table2_halflife"
  "../bench/bench_table2_halflife.pdb"
  "CMakeFiles/bench_table2_halflife.dir/bench_table2_halflife.cpp.o"
  "CMakeFiles/bench_table2_halflife.dir/bench_table2_halflife.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_halflife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
