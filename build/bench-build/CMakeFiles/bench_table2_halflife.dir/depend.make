# Empty dependencies file for bench_table2_halflife.
# This may be replaced when dependencies are built.
