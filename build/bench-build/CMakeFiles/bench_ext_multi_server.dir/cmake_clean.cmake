file(REMOVE_RECURSE
  "../bench/bench_ext_multi_server"
  "../bench/bench_ext_multi_server.pdb"
  "CMakeFiles/bench_ext_multi_server.dir/bench_ext_multi_server.cpp.o"
  "CMakeFiles/bench_ext_multi_server.dir/bench_ext_multi_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
