# Empty dependencies file for bench_ext_multi_server.
# This may be replaced when dependencies are built.
