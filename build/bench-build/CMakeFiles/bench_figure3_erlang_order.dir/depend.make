# Empty dependencies file for bench_figure3_erlang_order.
# This may be replaced when dependencies are built.
