file(REMOVE_RECURSE
  "../bench/bench_figure3_erlang_order"
  "../bench/bench_figure3_erlang_order.pdb"
  "CMakeFiles/bench_figure3_erlang_order.dir/bench_figure3_erlang_order.cpp.o"
  "CMakeFiles/bench_figure3_erlang_order.dir/bench_figure3_erlang_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_erlang_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
