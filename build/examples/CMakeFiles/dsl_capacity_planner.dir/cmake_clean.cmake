file(REMOVE_RECURSE
  "CMakeFiles/dsl_capacity_planner.dir/dsl_capacity_planner.cpp.o"
  "CMakeFiles/dsl_capacity_planner.dir/dsl_capacity_planner.cpp.o.d"
  "dsl_capacity_planner"
  "dsl_capacity_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
