# Empty compiler generated dependencies file for dsl_capacity_planner.
# This may be replaced when dependencies are built.
