# Empty dependencies file for measure_and_dimension.
# This may be replaced when dependencies are built.
