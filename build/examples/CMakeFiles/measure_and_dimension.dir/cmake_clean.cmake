file(REMOVE_RECURSE
  "CMakeFiles/measure_and_dimension.dir/measure_and_dimension.cpp.o"
  "CMakeFiles/measure_and_dimension.dir/measure_and_dimension.cpp.o.d"
  "measure_and_dimension"
  "measure_and_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_and_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
