file(REMOVE_RECURSE
  "CMakeFiles/isolation_study.dir/isolation_study.cpp.o"
  "CMakeFiles/isolation_study.dir/isolation_study.cpp.o.d"
  "isolation_study"
  "isolation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
