file(REMOVE_RECURSE
  "CMakeFiles/model_vs_sim.dir/model_vs_sim.cpp.o"
  "CMakeFiles/model_vs_sim.dir/model_vs_sim.cpp.o.d"
  "model_vs_sim"
  "model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
