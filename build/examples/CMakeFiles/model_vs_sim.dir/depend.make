# Empty dependencies file for model_vs_sim.
# This may be replaced when dependencies are built.
