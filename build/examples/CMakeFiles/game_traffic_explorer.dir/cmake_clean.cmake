file(REMOVE_RECURSE
  "CMakeFiles/game_traffic_explorer.dir/game_traffic_explorer.cpp.o"
  "CMakeFiles/game_traffic_explorer.dir/game_traffic_explorer.cpp.o.d"
  "game_traffic_explorer"
  "game_traffic_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_traffic_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
