# Empty dependencies file for game_traffic_explorer.
# This may be replaced when dependencies are built.
