file(REMOVE_RECURSE
  "libfpsq_dist.a"
)
