
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/deterministic.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/deterministic.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/deterministic.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/distribution.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/distribution.cpp.o.d"
  "/root/repo/src/dist/erlang.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/erlang.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/erlang.cpp.o.d"
  "/root/repo/src/dist/exponential.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/exponential.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/exponential.cpp.o.d"
  "/root/repo/src/dist/extreme.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/extreme.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/extreme.cpp.o.d"
  "/root/repo/src/dist/fitting.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/fitting.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/fitting.cpp.o.d"
  "/root/repo/src/dist/gamma.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/gamma.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/gamma.cpp.o.d"
  "/root/repo/src/dist/lognormal.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/lognormal.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/lognormal.cpp.o.d"
  "/root/repo/src/dist/mixture.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/mixture.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/mixture.cpp.o.d"
  "/root/repo/src/dist/normal.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/normal.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/normal.cpp.o.d"
  "/root/repo/src/dist/pareto.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/pareto.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/pareto.cpp.o.d"
  "/root/repo/src/dist/rng.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/rng.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/rng.cpp.o.d"
  "/root/repo/src/dist/shifted.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/shifted.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/shifted.cpp.o.d"
  "/root/repo/src/dist/uniform.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/uniform.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/uniform.cpp.o.d"
  "/root/repo/src/dist/weibull.cpp" "src/CMakeFiles/fpsq_dist.dir/dist/weibull.cpp.o" "gcc" "src/CMakeFiles/fpsq_dist.dir/dist/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpsq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
