# Empty compiler generated dependencies file for fpsq_dist.
# This may be replaced when dependencies are built.
