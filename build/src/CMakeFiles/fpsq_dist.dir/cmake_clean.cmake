file(REMOVE_RECURSE
  "CMakeFiles/fpsq_dist.dir/dist/deterministic.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/deterministic.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/distribution.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/distribution.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/erlang.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/erlang.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/exponential.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/exponential.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/extreme.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/extreme.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/fitting.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/fitting.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/gamma.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/gamma.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/lognormal.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/lognormal.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/mixture.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/mixture.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/normal.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/normal.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/pareto.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/pareto.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/rng.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/rng.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/shifted.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/shifted.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/uniform.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/uniform.cpp.o.d"
  "CMakeFiles/fpsq_dist.dir/dist/weibull.cpp.o"
  "CMakeFiles/fpsq_dist.dir/dist/weibull.cpp.o.d"
  "libfpsq_dist.a"
  "libfpsq_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
