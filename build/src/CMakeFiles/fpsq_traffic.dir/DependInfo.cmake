
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/client_source.cpp" "src/CMakeFiles/fpsq_traffic.dir/traffic/client_source.cpp.o" "gcc" "src/CMakeFiles/fpsq_traffic.dir/traffic/client_source.cpp.o.d"
  "/root/repo/src/traffic/game_profiles.cpp" "src/CMakeFiles/fpsq_traffic.dir/traffic/game_profiles.cpp.o" "gcc" "src/CMakeFiles/fpsq_traffic.dir/traffic/game_profiles.cpp.o.d"
  "/root/repo/src/traffic/server_source.cpp" "src/CMakeFiles/fpsq_traffic.dir/traffic/server_source.cpp.o" "gcc" "src/CMakeFiles/fpsq_traffic.dir/traffic/server_source.cpp.o.d"
  "/root/repo/src/traffic/synthetic.cpp" "src/CMakeFiles/fpsq_traffic.dir/traffic/synthetic.cpp.o" "gcc" "src/CMakeFiles/fpsq_traffic.dir/traffic/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpsq_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
