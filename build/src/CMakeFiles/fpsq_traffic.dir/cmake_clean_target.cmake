file(REMOVE_RECURSE
  "libfpsq_traffic.a"
)
