file(REMOVE_RECURSE
  "CMakeFiles/fpsq_traffic.dir/traffic/client_source.cpp.o"
  "CMakeFiles/fpsq_traffic.dir/traffic/client_source.cpp.o.d"
  "CMakeFiles/fpsq_traffic.dir/traffic/game_profiles.cpp.o"
  "CMakeFiles/fpsq_traffic.dir/traffic/game_profiles.cpp.o.d"
  "CMakeFiles/fpsq_traffic.dir/traffic/server_source.cpp.o"
  "CMakeFiles/fpsq_traffic.dir/traffic/server_source.cpp.o.d"
  "CMakeFiles/fpsq_traffic.dir/traffic/synthetic.cpp.o"
  "CMakeFiles/fpsq_traffic.dir/traffic/synthetic.cpp.o.d"
  "libfpsq_traffic.a"
  "libfpsq_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
