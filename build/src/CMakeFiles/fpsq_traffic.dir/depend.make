# Empty dependencies file for fpsq_traffic.
# This may be replaced when dependencies are built.
