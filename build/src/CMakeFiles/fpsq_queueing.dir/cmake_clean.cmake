file(REMOVE_RECURSE
  "CMakeFiles/fpsq_queueing.dir/queueing/bounds.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/bounds.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/chernoff.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/chernoff.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/convolution.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/convolution.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/dek1.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/dek1.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/erlang_mix.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/erlang_mix.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/giek1.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/giek1.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/lindley.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/lindley.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/mg1.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/mg1.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/mg1_erlang_service.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/mg1_erlang_service.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/ndd1.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/ndd1.cpp.o.d"
  "CMakeFiles/fpsq_queueing.dir/queueing/position_delay.cpp.o"
  "CMakeFiles/fpsq_queueing.dir/queueing/position_delay.cpp.o.d"
  "libfpsq_queueing.a"
  "libfpsq_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
