
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/bounds.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/bounds.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/bounds.cpp.o.d"
  "/root/repo/src/queueing/chernoff.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/chernoff.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/chernoff.cpp.o.d"
  "/root/repo/src/queueing/convolution.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/convolution.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/convolution.cpp.o.d"
  "/root/repo/src/queueing/dek1.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/dek1.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/dek1.cpp.o.d"
  "/root/repo/src/queueing/erlang_mix.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/erlang_mix.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/erlang_mix.cpp.o.d"
  "/root/repo/src/queueing/giek1.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/giek1.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/giek1.cpp.o.d"
  "/root/repo/src/queueing/lindley.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/lindley.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/lindley.cpp.o.d"
  "/root/repo/src/queueing/mg1.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/mg1.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/mg1.cpp.o.d"
  "/root/repo/src/queueing/mg1_erlang_service.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/mg1_erlang_service.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/mg1_erlang_service.cpp.o.d"
  "/root/repo/src/queueing/ndd1.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/ndd1.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/ndd1.cpp.o.d"
  "/root/repo/src/queueing/position_delay.cpp" "src/CMakeFiles/fpsq_queueing.dir/queueing/position_delay.cpp.o" "gcc" "src/CMakeFiles/fpsq_queueing.dir/queueing/position_delay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpsq_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
