# Empty dependencies file for fpsq_queueing.
# This may be replaced when dependencies are built.
