file(REMOVE_RECURSE
  "libfpsq_queueing.a"
)
