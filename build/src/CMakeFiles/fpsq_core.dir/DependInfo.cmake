
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dimensioning.cpp" "src/CMakeFiles/fpsq_core.dir/core/dimensioning.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/dimensioning.cpp.o.d"
  "/root/repo/src/core/mixed_population.cpp" "src/CMakeFiles/fpsq_core.dir/core/mixed_population.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/mixed_population.cpp.o.d"
  "/root/repo/src/core/multi_server.cpp" "src/CMakeFiles/fpsq_core.dir/core/multi_server.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/multi_server.cpp.o.d"
  "/root/repo/src/core/playability.cpp" "src/CMakeFiles/fpsq_core.dir/core/playability.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/playability.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/fpsq_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/rtt_model.cpp" "src/CMakeFiles/fpsq_core.dir/core/rtt_model.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/rtt_model.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/fpsq_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/CMakeFiles/fpsq_core.dir/core/validation.cpp.o" "gcc" "src/CMakeFiles/fpsq_core.dir/core/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpsq_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
