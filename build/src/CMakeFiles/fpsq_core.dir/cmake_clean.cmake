file(REMOVE_RECURSE
  "CMakeFiles/fpsq_core.dir/core/dimensioning.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/dimensioning.cpp.o.d"
  "CMakeFiles/fpsq_core.dir/core/mixed_population.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/mixed_population.cpp.o.d"
  "CMakeFiles/fpsq_core.dir/core/multi_server.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/multi_server.cpp.o.d"
  "CMakeFiles/fpsq_core.dir/core/playability.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/playability.cpp.o.d"
  "CMakeFiles/fpsq_core.dir/core/report.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/report.cpp.o.d"
  "CMakeFiles/fpsq_core.dir/core/rtt_model.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/rtt_model.cpp.o.d"
  "CMakeFiles/fpsq_core.dir/core/scenario.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/scenario.cpp.o.d"
  "CMakeFiles/fpsq_core.dir/core/validation.cpp.o"
  "CMakeFiles/fpsq_core.dir/core/validation.cpp.o.d"
  "libfpsq_core.a"
  "libfpsq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
