file(REMOVE_RECURSE
  "libfpsq_core.a"
)
