# Empty compiler generated dependencies file for fpsq_core.
# This may be replaced when dependencies are built.
