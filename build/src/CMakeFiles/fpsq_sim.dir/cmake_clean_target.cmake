file(REMOVE_RECURSE
  "libfpsq_sim.a"
)
