file(REMOVE_RECURSE
  "CMakeFiles/fpsq_sim.dir/sim/cross_traffic.cpp.o"
  "CMakeFiles/fpsq_sim.dir/sim/cross_traffic.cpp.o.d"
  "CMakeFiles/fpsq_sim.dir/sim/event_kernel.cpp.o"
  "CMakeFiles/fpsq_sim.dir/sim/event_kernel.cpp.o.d"
  "CMakeFiles/fpsq_sim.dir/sim/gaming_scenario.cpp.o"
  "CMakeFiles/fpsq_sim.dir/sim/gaming_scenario.cpp.o.d"
  "CMakeFiles/fpsq_sim.dir/sim/link.cpp.o"
  "CMakeFiles/fpsq_sim.dir/sim/link.cpp.o.d"
  "CMakeFiles/fpsq_sim.dir/sim/measurement.cpp.o"
  "CMakeFiles/fpsq_sim.dir/sim/measurement.cpp.o.d"
  "CMakeFiles/fpsq_sim.dir/sim/queues.cpp.o"
  "CMakeFiles/fpsq_sim.dir/sim/queues.cpp.o.d"
  "CMakeFiles/fpsq_sim.dir/sim/trace_replay.cpp.o"
  "CMakeFiles/fpsq_sim.dir/sim/trace_replay.cpp.o.d"
  "libfpsq_sim.a"
  "libfpsq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
