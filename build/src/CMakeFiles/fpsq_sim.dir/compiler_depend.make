# Empty compiler generated dependencies file for fpsq_sim.
# This may be replaced when dependencies are built.
