
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cross_traffic.cpp" "src/CMakeFiles/fpsq_sim.dir/sim/cross_traffic.cpp.o" "gcc" "src/CMakeFiles/fpsq_sim.dir/sim/cross_traffic.cpp.o.d"
  "/root/repo/src/sim/event_kernel.cpp" "src/CMakeFiles/fpsq_sim.dir/sim/event_kernel.cpp.o" "gcc" "src/CMakeFiles/fpsq_sim.dir/sim/event_kernel.cpp.o.d"
  "/root/repo/src/sim/gaming_scenario.cpp" "src/CMakeFiles/fpsq_sim.dir/sim/gaming_scenario.cpp.o" "gcc" "src/CMakeFiles/fpsq_sim.dir/sim/gaming_scenario.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/fpsq_sim.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/fpsq_sim.dir/sim/link.cpp.o.d"
  "/root/repo/src/sim/measurement.cpp" "src/CMakeFiles/fpsq_sim.dir/sim/measurement.cpp.o" "gcc" "src/CMakeFiles/fpsq_sim.dir/sim/measurement.cpp.o.d"
  "/root/repo/src/sim/queues.cpp" "src/CMakeFiles/fpsq_sim.dir/sim/queues.cpp.o" "gcc" "src/CMakeFiles/fpsq_sim.dir/sim/queues.cpp.o.d"
  "/root/repo/src/sim/trace_replay.cpp" "src/CMakeFiles/fpsq_sim.dir/sim/trace_replay.cpp.o" "gcc" "src/CMakeFiles/fpsq_sim.dir/sim/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpsq_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
