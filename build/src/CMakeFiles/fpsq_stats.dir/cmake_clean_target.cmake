file(REMOVE_RECURSE
  "libfpsq_stats.a"
)
