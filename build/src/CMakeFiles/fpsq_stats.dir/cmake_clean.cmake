file(REMOVE_RECURSE
  "CMakeFiles/fpsq_stats.dir/stats/autocorrelation.cpp.o"
  "CMakeFiles/fpsq_stats.dir/stats/autocorrelation.cpp.o.d"
  "CMakeFiles/fpsq_stats.dir/stats/batch_means.cpp.o"
  "CMakeFiles/fpsq_stats.dir/stats/batch_means.cpp.o.d"
  "CMakeFiles/fpsq_stats.dir/stats/empirical.cpp.o"
  "CMakeFiles/fpsq_stats.dir/stats/empirical.cpp.o.d"
  "CMakeFiles/fpsq_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/fpsq_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/fpsq_stats.dir/stats/moments.cpp.o"
  "CMakeFiles/fpsq_stats.dir/stats/moments.cpp.o.d"
  "CMakeFiles/fpsq_stats.dir/stats/quantile.cpp.o"
  "CMakeFiles/fpsq_stats.dir/stats/quantile.cpp.o.d"
  "libfpsq_stats.a"
  "libfpsq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
