
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorrelation.cpp" "src/CMakeFiles/fpsq_stats.dir/stats/autocorrelation.cpp.o" "gcc" "src/CMakeFiles/fpsq_stats.dir/stats/autocorrelation.cpp.o.d"
  "/root/repo/src/stats/batch_means.cpp" "src/CMakeFiles/fpsq_stats.dir/stats/batch_means.cpp.o" "gcc" "src/CMakeFiles/fpsq_stats.dir/stats/batch_means.cpp.o.d"
  "/root/repo/src/stats/empirical.cpp" "src/CMakeFiles/fpsq_stats.dir/stats/empirical.cpp.o" "gcc" "src/CMakeFiles/fpsq_stats.dir/stats/empirical.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/fpsq_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/fpsq_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/moments.cpp" "src/CMakeFiles/fpsq_stats.dir/stats/moments.cpp.o" "gcc" "src/CMakeFiles/fpsq_stats.dir/stats/moments.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/CMakeFiles/fpsq_stats.dir/stats/quantile.cpp.o" "gcc" "src/CMakeFiles/fpsq_stats.dir/stats/quantile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpsq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
