# Empty dependencies file for fpsq_stats.
# This may be replaced when dependencies are built.
