file(REMOVE_RECURSE
  "CMakeFiles/fpsq_math.dir/math/fixed_point.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/fixed_point.cpp.o.d"
  "CMakeFiles/fpsq_math.dir/math/laplace.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/laplace.cpp.o.d"
  "CMakeFiles/fpsq_math.dir/math/linalg.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/linalg.cpp.o.d"
  "CMakeFiles/fpsq_math.dir/math/minimize.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/minimize.cpp.o.d"
  "CMakeFiles/fpsq_math.dir/math/polynomial_roots.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/polynomial_roots.cpp.o.d"
  "CMakeFiles/fpsq_math.dir/math/quadrature.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/quadrature.cpp.o.d"
  "CMakeFiles/fpsq_math.dir/math/roots.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/roots.cpp.o.d"
  "CMakeFiles/fpsq_math.dir/math/special.cpp.o"
  "CMakeFiles/fpsq_math.dir/math/special.cpp.o.d"
  "libfpsq_math.a"
  "libfpsq_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
