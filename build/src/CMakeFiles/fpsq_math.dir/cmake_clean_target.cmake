file(REMOVE_RECURSE
  "libfpsq_math.a"
)
