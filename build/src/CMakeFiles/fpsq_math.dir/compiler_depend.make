# Empty compiler generated dependencies file for fpsq_math.
# This may be replaced when dependencies are built.
