
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fixed_point.cpp" "src/CMakeFiles/fpsq_math.dir/math/fixed_point.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/fixed_point.cpp.o.d"
  "/root/repo/src/math/laplace.cpp" "src/CMakeFiles/fpsq_math.dir/math/laplace.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/laplace.cpp.o.d"
  "/root/repo/src/math/linalg.cpp" "src/CMakeFiles/fpsq_math.dir/math/linalg.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/linalg.cpp.o.d"
  "/root/repo/src/math/minimize.cpp" "src/CMakeFiles/fpsq_math.dir/math/minimize.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/minimize.cpp.o.d"
  "/root/repo/src/math/polynomial_roots.cpp" "src/CMakeFiles/fpsq_math.dir/math/polynomial_roots.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/polynomial_roots.cpp.o.d"
  "/root/repo/src/math/quadrature.cpp" "src/CMakeFiles/fpsq_math.dir/math/quadrature.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/quadrature.cpp.o.d"
  "/root/repo/src/math/roots.cpp" "src/CMakeFiles/fpsq_math.dir/math/roots.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/roots.cpp.o.d"
  "/root/repo/src/math/special.cpp" "src/CMakeFiles/fpsq_math.dir/math/special.cpp.o" "gcc" "src/CMakeFiles/fpsq_math.dir/math/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
