# Empty dependencies file for fpsq_trace.
# This may be replaced when dependencies are built.
