file(REMOVE_RECURSE
  "CMakeFiles/fpsq_trace.dir/trace/analyzer.cpp.o"
  "CMakeFiles/fpsq_trace.dir/trace/analyzer.cpp.o.d"
  "CMakeFiles/fpsq_trace.dir/trace/burst.cpp.o"
  "CMakeFiles/fpsq_trace.dir/trace/burst.cpp.o.d"
  "CMakeFiles/fpsq_trace.dir/trace/pcap.cpp.o"
  "CMakeFiles/fpsq_trace.dir/trace/pcap.cpp.o.d"
  "CMakeFiles/fpsq_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/fpsq_trace.dir/trace/trace.cpp.o.d"
  "CMakeFiles/fpsq_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/fpsq_trace.dir/trace/trace_io.cpp.o.d"
  "libfpsq_trace.a"
  "libfpsq_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
