
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analyzer.cpp" "src/CMakeFiles/fpsq_trace.dir/trace/analyzer.cpp.o" "gcc" "src/CMakeFiles/fpsq_trace.dir/trace/analyzer.cpp.o.d"
  "/root/repo/src/trace/burst.cpp" "src/CMakeFiles/fpsq_trace.dir/trace/burst.cpp.o" "gcc" "src/CMakeFiles/fpsq_trace.dir/trace/burst.cpp.o.d"
  "/root/repo/src/trace/pcap.cpp" "src/CMakeFiles/fpsq_trace.dir/trace/pcap.cpp.o" "gcc" "src/CMakeFiles/fpsq_trace.dir/trace/pcap.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/fpsq_trace.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/fpsq_trace.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/fpsq_trace.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/fpsq_trace.dir/trace/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpsq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpsq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
