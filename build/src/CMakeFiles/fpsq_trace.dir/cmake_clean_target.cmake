file(REMOVE_RECURSE
  "libfpsq_trace.a"
)
