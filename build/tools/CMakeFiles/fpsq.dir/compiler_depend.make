# Empty compiler generated dependencies file for fpsq.
# This may be replaced when dependencies are built.
