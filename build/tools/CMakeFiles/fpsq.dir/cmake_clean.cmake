file(REMOVE_RECURSE
  "CMakeFiles/fpsq.dir/fpsq.cpp.o"
  "CMakeFiles/fpsq.dir/fpsq.cpp.o.d"
  "fpsq"
  "fpsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
