# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_rtt "/root/repo/build/tools/fpsq" "rtt" "--gamers" "80" "--k" "9")
set_tests_properties(cli_rtt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/fpsq" "report" "--gamers" "80" "--k" "9" "--jitter" "0.07")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dimension "/root/repo/build/tools/fpsq" "dimension" "--bound" "50" "--k" "9")
set_tests_properties(cli_dimension PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/fpsq" "sweep" "--step" "0.2")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pipeline "sh" "-c" "/root/repo/build/tools/fpsq generate --game cs --players 4     --duration 30 --out /root/repo/build/tools/cli_trace.csv &&     /root/repo/build/tools/fpsq analyze --in /root/repo/build/tools/cli_trace.csv")
set_tests_properties(cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay "sh" "-c" "/root/repo/build/tools/fpsq generate --game ut --players 6     --duration 20 --out /root/repo/build/tools/cli_replay.csv &&     /root/repo/build/tools/fpsq replay --in /root/repo/build/tools/cli_replay.csv")
set_tests_properties(cli_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/fpsq" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
